package experiment

import (
	"fmt"
	"strconv"
	"strings"
	"testing"
	"time"
)

// parseDur converts the table-formatted duration strings back to a
// duration for shape assertions.
func parseDur(t *testing.T, s string) time.Duration {
	t.Helper()
	mult := time.Nanosecond
	var num string
	switch {
	case strings.HasSuffix(s, "µs"):
		num, mult = strings.TrimSuffix(s, "µs"), time.Microsecond
	case strings.HasSuffix(s, "ms"):
		num, mult = strings.TrimSuffix(s, "ms"), time.Millisecond
	case strings.HasSuffix(s, "s"):
		num, mult = strings.TrimSuffix(s, "s"), time.Second
	case strings.HasSuffix(s, "m"):
		num, mult = strings.TrimSuffix(s, "m"), time.Minute
	case strings.HasSuffix(s, "h"):
		num, mult = strings.TrimSuffix(s, "h"), time.Hour
	case s == "0":
		return 0
	default:
		t.Fatalf("unparseable duration %q", s)
	}
	f, err := strconv.ParseFloat(num, 64)
	if err != nil {
		t.Fatalf("unparseable duration %q: %v", s, err)
	}
	return time.Duration(f * float64(mult))
}

func TestTablePrinting(t *testing.T) {
	tb := &Table{ID: "x", Title: "demo", Columns: []string{"a", "bee"}}
	tb.AddRow("1", "2")
	tb.AddRow("333", "4")
	var sb strings.Builder
	tb.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"== x: demo ==", "a", "bee", "333"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestTable1Static(t *testing.T) {
	tb := Table1()
	if len(tb.Rows) != 10 {
		t.Fatalf("rows = %d, want 10", len(tb.Rows))
	}
	if tb.Rows[6][1] != "Tianhe-2A" || tb.Rows[6][2] != "Slurm" {
		t.Errorf("rank 7 row = %v", tb.Rows[6])
	}
}

func TestRegistryComplete(t *testing.T) {
	ids := map[string]bool{}
	for _, s := range Registry() {
		if ids[s.ID] {
			t.Fatalf("duplicate experiment %q", s.ID)
		}
		ids[s.ID] = true
	}
	for _, want := range []string{"table1", "fig5", "fig7", "fig7f", "fig8a", "fig8b",
		"placement", "fig9", "table5", "fig11a", "fig10", "ablation", "table8", "fig11b"} {
		if !ids[want] {
			t.Errorf("missing experiment %q", want)
		}
	}
	if _, ok := Lookup("table6"); !ok {
		t.Error("table6 alias broken")
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("unknown ID resolved")
	}
}

func TestFig5Shapes(t *testing.T) {
	tabs := Fig5(8000)
	if len(tabs) != 3 {
		t.Fatalf("tables = %d", len(tabs))
	}
	// CDF at the largest threshold approaches 1 for both systems.
	cdf := tabs[0]
	last := cdf.Rows[len(cdf.Rows)-1]
	for col := 1; col <= 2; col++ {
		v, _ := strconv.ParseFloat(last[col], 64)
		if v < 0.9 {
			t.Errorf("CDF(16) col %d = %v", col, v)
		}
	}
	// Correlation decays for both systems.
	corr := tabs[1]
	first, _ := strconv.ParseFloat(corr.Rows[0][1], 64)
	lastV, _ := strconv.ParseFloat(corr.Rows[len(corr.Rows)-1][1], 64)
	if first <= lastV {
		t.Errorf("Tianhe-2A interval correlation did not decay: %v -> %v", first, lastV)
	}
}

func TestFig7fShape(t *testing.T) {
	tb := Fig7f(512, []int{32, 512})
	if len(tb.Rows) != 6 {
		t.Fatalf("rows = %d, want 6 RMs", len(tb.Rows))
	}
	byName := map[string][]string{}
	for _, r := range tb.Rows {
		byName[r[0]] = r
	}
	// SGE's RM overhead (occupation minus the fixed 10s runtime) explodes
	// with size; ESlurm stays below 15s total.
	sgeSmall := parseDur(t, byName["SGE"][1]) - 10*time.Second
	sgeBig := parseDur(t, byName["SGE"][2]) - 10*time.Second
	if sgeBig < 5*sgeSmall {
		t.Errorf("SGE overhead did not degrade: %v -> %v", sgeSmall, sgeBig)
	}
	for _, cell := range byName["ESlurm"][1:] {
		if d := parseDur(t, cell); d > 15*time.Second {
			t.Errorf("ESlurm occupation %v exceeds 15s", d)
		}
	}
	if eBig := parseDur(t, byName["ESlurm"][2]); eBig >= sgeBig+10*time.Second {
		t.Errorf("ESlurm (%v) not faster than SGE (%v) at full size", eBig, sgeBig+10*time.Second)
	}
}

func TestFig8aShape(t *testing.T) {
	tb := Fig8a(1024)
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	slurmLoad := parseDur(t, tb.Rows[0][1])
	noFP := parseDur(t, tb.Rows[1][1])
	full := parseDur(t, tb.Rows[2][1])
	if full >= slurmLoad {
		t.Errorf("ESlurm (%v) not faster than Slurm (%v)", full, slurmLoad)
	}
	if full > noFP {
		t.Errorf("FP-Tree (%v) slower than no-FP (%v)", full, noFP)
	}
}

func TestFig8bShape(t *testing.T) {
	tb := Fig8b(512, []float64{0, 0.3})
	byName := map[string][]string{}
	for _, r := range tb.Rows {
		byName[r[0]] = r
	}
	// Ring and tree degrade under failures; FP-Tree stays fast and is the
	// fastest structure at 30%.
	for _, s := range []string{"ring", "tree"} {
		clean := parseDur(t, byName[s][1])
		dirty := parseDur(t, byName[s][2])
		if dirty <= clean {
			t.Errorf("%s did not degrade: %v -> %v", s, clean, dirty)
		}
	}
	fp := parseDur(t, byName["fptree"][2])
	if fp > 10*time.Second {
		t.Errorf("FP-Tree at 30%% failures = %v, want < 10s", fp)
	}
	for _, s := range []string{"ring", "star", "tree"} {
		if parseDur(t, byName[s][2]) <= fp {
			t.Errorf("%s at 30%% not slower than FP-Tree", s)
		}
	}
}

func TestPlacementShape(t *testing.T) {
	tb := Placement(512, 1)
	vals := map[string]string{}
	for _, r := range tb.Rows {
		vals[r[0]] = r[1]
	}
	trees, _ := strconv.Atoi(vals["FP-Trees built"])
	if trees == 0 {
		t.Fatal("no FP-Trees built")
	}
	ratio := strings.TrimSuffix(vals["leaf placement ratio"], "%")
	r, _ := strconv.ParseFloat(ratio, 64)
	// The alert predictor detects ~85%; placement should land near that
	// (paper: 81.7%).
	if r < 60 || r > 100 {
		t.Errorf("leaf placement ratio = %v%%, want ~80%%", r)
	}
}

func TestFig11aShape(t *testing.T) {
	tb := Fig11a(2048, []int{1, 8, 32})
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// One satellite is clearly worse than eight (parallel relays).
	one := parseDur(t, tb.Rows[0][1])
	eight := parseDur(t, tb.Rows[1][1])
	if eight >= one {
		t.Errorf("8 satellites (%v) not faster than 1 (%v)", eight, one)
	}
}

func TestQuickSuiteSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("quick suite still takes tens of seconds")
	}
	// The smallest representative run of the estimator + sched drivers.
	tabs := Fig10([]int{256}, 800)
	if len(tabs) != 3 {
		t.Fatalf("fig10 tables = %d", len(tabs))
	}
	byName := map[string][]string{}
	for _, r := range tabs[0].Rows {
		byName[r[0]] = r
	}
	for _, name := range []string{"SGE", "Slurm", "ESlurm"} {
		if len(byName[name]) == 0 || byName[name][1] == "-" {
			t.Errorf("%s missing from 256-node column", name)
		}
	}
	// ESlurm utilization >= Slurm's at the measured scale.
	parse := func(s string) float64 {
		v, _ := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
		return v
	}
	if parse(byName["ESlurm"][1]) < parse(byName["Slurm"][1])-2 {
		t.Errorf("ESlurm utilization %s well below Slurm %s", byName["ESlurm"][1], byName["Slurm"][1])
	}
}

func TestTable8Trend(t *testing.T) {
	if testing.Short() {
		t.Skip("estimator sweep is slow")
	}
	tb := Table8(2000)
	if len(tb.Rows) != 9 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// UR decreases from alpha=1.00 to alpha=1.08.
	ur0, _ := strconv.ParseFloat(tb.Rows[0][2], 64)
	ur8, _ := strconv.ParseFloat(tb.Rows[8][2], 64)
	if ur8 >= ur0 {
		t.Errorf("UR did not fall with alpha: %v -> %v", ur0, ur8)
	}
}

func TestAblationDrivers(t *testing.T) {
	w := AblationTreeWidth(256, []int{4, 32})
	if len(w.Rows) != 2 {
		t.Fatalf("width rows = %d", len(w.Rows))
	}
	// Narrower trees are deeper.
	if w.Rows[0][1] <= w.Rows[1][1] {
		t.Errorf("depth not decreasing with width: %v vs %v", w.Rows[0][1], w.Rows[1][1])
	}

	r := AblationReallocLimit(128, []int{0, 2})
	if len(r.Rows) != 2 {
		t.Fatalf("realloc rows = %d", len(r.Rows))
	}
	// limit=0 produces takeovers and no reallocations; limit=2 the reverse.
	if r.Rows[0][2] != "0" || r.Rows[0][3] == "0" {
		t.Errorf("limit=0 row wrong: %v", r.Rows[0])
	}
	if r.Rows[1][2] == "0" {
		t.Errorf("limit=2 row wrong: %v", r.Rows[1])
	}

	tp := AblationTopology(1024, 0.02)
	if len(tp.Rows) != 3 {
		t.Fatalf("topo rows = %d", len(tp.Rows))
	}
	parse := func(s string) int {
		var v int
		fmt.Sscanf(s, "%d", &v)
		return v
	}
	random, aware, composed := parse(tp.Rows[0][1]), parse(tp.Rows[1][1]), parse(tp.Rows[2][1])
	if aware >= random {
		t.Errorf("topology-aware cost %d >= random %d", aware, random)
	}
	if composed > aware*13/10 {
		t.Errorf("fine-tuned cost %d destroys locality (aware %d)", composed, aware)
	}
}
