package experiment

import (
	"fmt"
	"math"
	"time"

	"eslurm/internal/cluster"
	"eslurm/internal/rm"
	"eslurm/internal/simnet"
)

// resourceRun drives one RM on a fresh cluster for `span` of virtual time
// under a light production-like job flow (a job every ~100 s, lognormal
// sizes, short runtimes) and returns the master meter plus the cluster for
// satellite inspection.
func resourceRun(mk func(c *cluster.Cluster) rm.RM, nodes, satellites int, span time.Duration, seed int64) (*cluster.ResourceMeter, *cluster.Cluster, rm.RM) {
	e := simnet.NewEngine(seed)
	c := cluster.New(e, cluster.Config{Computes: nodes, Satellites: satellites})
	r := mk(c)
	r.Start()

	rng := e.Rand("experiment/jobs")
	var submit func()
	active := 0
	submit = func() {
		gap := time.Duration(30+rng.ExpFloat64()*70) * time.Second
		e.After(gap, func() {
			if e.Now() > span {
				return
			}
			size := int(math.Exp(rng.NormFloat64()*1.2+4.2)) + 1 // lognormal ~64 median
			if size > nodes/2 {
				size = nodes / 2
			}
			jobNodes := c.Computes()[:size]
			active++
			r.LoadJob(jobNodes, func(time.Duration) {
				runFor := time.Duration(10+rng.ExpFloat64()*110) * time.Second
				e.After(runFor, func() {
					r.TerminateJob(jobNodes, func(time.Duration) { active-- })
				})
			})
			submit()
		})
	}
	submit()

	e.RunUntil(span)
	r.Stop()
	// Drain remaining activity so meters settle.
	e.RunUntil(span + 30*time.Minute)
	return r.Meter(), c, r
}

// Fig7 reproduces the master-node resource comparison of Fig. 7a–e: six
// RMs managing the same cluster for `span` virtual time under the same job
// flow. The paper runs 24 h at 4,096 nodes; span is a knob so the default
// benchrunner invocation stays fast.
func Fig7(nodes int, span time.Duration) *Table {
	if span == 0 {
		span = 2 * time.Hour
	}
	t := &Table{
		ID:    "fig7",
		Title: fmt.Sprintf("Master-node resource usage, %d nodes, %s run (Fig. 7a-e)", nodes, span),
		Columns: []string{"RM", "CPU time", "CPU util", "vmem", "rss",
			"avg sockets", "peak sockets"},
	}
	type mk struct {
		name       string
		satellites int
		new        func(c *cluster.Cluster) rm.RM
	}
	mks := []mk{
		{"SGE", 0, func(c *cluster.Cluster) rm.RM { return rm.NewCentralized(c, rm.SGEProfile()) }},
		{"Torque", 0, func(c *cluster.Cluster) rm.RM { return rm.NewCentralized(c, rm.TorqueProfile()) }},
		{"OpenPBS", 0, func(c *cluster.Cluster) rm.RM { return rm.NewCentralized(c, rm.OpenPBSProfile()) }},
		{"LSF", 0, func(c *cluster.Cluster) rm.RM { return rm.NewCentralized(c, rm.LSFProfile()) }},
		{"Slurm", 0, func(c *cluster.Cluster) rm.RM { return rm.NewCentralized(c, rm.SlurmProfile()) }},
		{"ESlurm", 2, func(c *cluster.Cluster) rm.RM { return rm.NewESlurm(c) }},
	}
	for i, m := range mks {
		meter, _, _ := resourceRun(m.new, nodes, m.satellites, span, int64(100+i))
		util := meter.CPUTime().Seconds() / span.Seconds()
		t.AddRow(m.name, fmtDur(meter.CPUTime()), fmtPct(util),
			fmtBytes(meter.VMem()), fmtBytes(meter.RSS()),
			fmt.Sprintf("%.1f", meter.AvgSockets()), fmt.Sprintf("%d", meter.PeakSockets()))
	}
	t.Note = "paper (24h, 4K nodes): ESlurm lowest CPU/rss/sockets; Slurm ~10GB vmem; SGE/OpenPBS hold node-count socket pools; ESlurm <100 sockets, <2GB vmem, ~60MB rss"
	return t
}

// Fig9 reproduces the full-scale Tianhe-2A comparison (16,384 nodes):
// Slurm vs ESlurm (two satellite nodes) master usage, plus the two
// satellites' own usage (Fig. 9d–f).
func Fig9(nodes int, span time.Duration) []*Table {
	if span == 0 {
		span = 2 * time.Hour
	}
	master := &Table{
		ID:    "fig9",
		Title: fmt.Sprintf("Master usage at %d nodes, %s run (Fig. 9a-c)", nodes, span),
		Columns: []string{"RM", "CPU time", "vmem", "rss",
			"avg sockets", "peak sockets"},
	}

	slurmMeter, _, _ := resourceRun(func(c *cluster.Cluster) rm.RM {
		return rm.NewCentralized(c, rm.SlurmProfile())
	}, nodes, 0, span, 200)
	esMeter, esCluster, _ := resourceRun(func(c *cluster.Cluster) rm.RM {
		return rm.NewESlurm(c)
	}, nodes, 2, span, 201)

	for _, row := range []struct {
		name string
		m    *cluster.ResourceMeter
	}{{"Slurm", slurmMeter}, {"ESlurm", esMeter}} {
		master.AddRow(row.name, fmtDur(row.m.CPUTime()), fmtBytes(row.m.VMem()),
			fmtBytes(row.m.RSS()), fmt.Sprintf("%.1f", row.m.AvgSockets()),
			fmt.Sprintf("%d", row.m.PeakSockets()))
	}
	master.Note = "paper: ESlurm <40% of Slurm's CPU time, >80% memory saving, >10x fewer sockets"

	sats := &Table{
		ID:      "fig9sat",
		Title:   "ESlurm satellite-node usage (Fig. 9d-f)",
		Columns: []string{"satellite", "CPU time", "vmem", "rss", "peak sockets"},
	}
	for i, id := range esCluster.Satellites() {
		m := &esCluster.Node(id).Meter
		sats.AddRow(fmt.Sprintf("satellite %d", i+1), fmtDur(m.CPUTime()),
			fmtBytes(m.VMem()), fmtBytes(m.RSS()), fmt.Sprintf("%d", m.PeakSockets()))
	}
	sats.Note = "paper: the two satellites balance evenly; sockets stay below 80"
	return []*Table{master, sats}
}

// Tables5and6 reproduces the NG-Tianhe satellite-count sweep (SE1..SE5 =
// 10..50 satellites at 20K+ nodes): Table V (master usage) and Table VI
// (average satellite operational data). The paper runs each setup for ten
// days; span is a knob and task counts are extrapolated to 10 days in the
// output.
func Tables5and6(nodes int, satCounts []int, span time.Duration) []*Table {
	if len(satCounts) == 0 {
		satCounts = []int{10, 20, 30, 40, 50}
	}
	if span == 0 {
		span = 2 * time.Hour
	}
	cols := []string{"metric"}
	for i := range satCounts {
		cols = append(cols, fmt.Sprintf("SE%d(%d)", i+1, satCounts[i]))
	}
	t5 := &Table{
		ID:      "table5",
		Title:   fmt.Sprintf("Master usage vs satellite count, %d nodes, %s run (Table V)", nodes, span),
		Columns: cols,
	}
	t6 := &Table{
		ID:      "table6",
		Title:   "Average satellite operational data (Table VI)",
		Columns: cols,
	}

	extrapolate := float64(10*24*time.Hour) / float64(span)
	type outcome struct {
		cpu                 time.Duration
		vmem, rss           int64
		avgSock             float64
		tasks, nodesPerTask float64
		satVMem, satRSS     int64
		satSock             float64
	}
	results := make([]outcome, len(satCounts))
	for i, sc := range satCounts {
		var es *rm.ESlurm
		meter, c, r := resourceRun(func(c *cluster.Cluster) rm.RM {
			e := rm.NewESlurm(c)
			es = e
			return e
		}, nodes, sc, span, int64(300+i))
		o := outcome{
			cpu: meter.CPUTime(), vmem: meter.VMem(), rss: meter.RSS(),
			avgSock: meter.AvgSockets(),
		}
		var tasks, nodesServed int
		var vmemSum, rssSum int64
		var sockSum float64
		for _, s := range es.M.Pool.All() {
			tasks += s.TasksReceived
			nodesServed += s.NodesServed
			m := &c.Node(s.ID).Meter
			vmemSum += m.VMem()
			rssSum += m.RSS()
			sockSum += m.AvgSockets()
		}
		n := len(es.M.Pool.All())
		if n > 0 {
			o.tasks = float64(tasks) / float64(n) * extrapolate
			if tasks > 0 {
				o.nodesPerTask = float64(nodesServed) / float64(tasks)
			}
			o.satVMem = vmemSum / int64(n)
			o.satRSS = rssSum / int64(n)
			o.satSock = sockSum / float64(n)
		}
		results[i] = o
		_ = r
	}

	row := func(t *Table, name string, f func(outcome) string) {
		cells := []string{name}
		for _, o := range results {
			cells = append(cells, f(o))
		}
		t.AddRow(cells...)
	}
	row(t5, "CPU time", func(o outcome) string { return fmtDur(o.cpu) })
	row(t5, "virtual memory", func(o outcome) string { return fmtBytes(o.vmem) })
	row(t5, "real memory", func(o outcome) string { return fmtBytes(o.rss) })
	row(t5, "avg concurrent sockets", func(o outcome) string { return fmt.Sprintf("%.1f", o.avgSock) })
	t5.Note = "paper trend: every metric grows mildly with the satellite count (more direct peers for the master)"

	row(t6, "tasks received (per 10 days)", func(o outcome) string { return fmt.Sprintf("%.0f", o.tasks) })
	row(t6, "avg nodes per task", func(o outcome) string { return fmt.Sprintf("%.1f", o.nodesPerTask) })
	row(t6, "virtual memory", func(o outcome) string { return fmtBytes(o.satVMem) })
	row(t6, "real memory", func(o outcome) string { return fmtBytes(o.satRSS) })
	row(t6, "avg concurrent sockets", func(o outcome) string { return fmt.Sprintf("%.1f", o.satSock) })
	t6.Note = fmt.Sprintf("task counts extrapolated x%.0f from the %s run; paper trend: tasks ~constant, nodes/task and memory fall as satellites grow", extrapolate, span)
	return []*Table{t5, t6}
}
