//go:build race

package experiment

// raceEnabled lets tests budget for the race detector's ~5-10× slowdown.
const raceEnabled = true
