package experiment

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"eslurm/internal/cluster"
	"eslurm/internal/rm"
	"eslurm/internal/simnet"
	"eslurm/internal/stats"
)

// resourceSeries runs one RM under the standard job flow, sampling the
// master meter every interval, and returns the four figure lines of
// Fig. 7a–e / Fig. 9a–c: cumulative CPU seconds, virtual memory (MB),
// resident memory (MB), concurrent sockets.
func resourceSeries(mk func(c *cluster.Cluster) rm.RM, name string, nodes, satellites int, span, interval time.Duration, seed int64) []*stats.Series {
	e := simnet.NewEngine(seed)
	c := cluster.New(e, cluster.Config{Computes: nodes, Satellites: satellites})
	r := mk(c)
	r.Start()
	sampler := cluster.NewSampler(e, r.Meter(), interval)

	rng := e.Rand("experiment/jobs")
	var submit func()
	submit = func() {
		gap := time.Duration(30+rng.ExpFloat64()*70) * time.Second
		e.After(gap, func() {
			if e.Now() > span {
				return
			}
			size := 1 << rng.Intn(10)
			if size > nodes/2 {
				size = nodes / 2
			}
			jobNodes := c.Computes()[:size]
			r.LoadJob(jobNodes, func(time.Duration) {
				runFor := time.Duration(10+rng.ExpFloat64()*110) * time.Second
				e.After(runFor, func() { r.TerminateJob(jobNodes, nil) })
			})
			submit()
		})
	}
	submit()
	e.RunUntil(span)
	sampler.Stop()
	r.Stop()

	cpu := &stats.Series{Name: name + "_cpu_s"}
	vmem := &stats.Series{Name: name + "_vmem_mb"}
	rss := &stats.Series{Name: name + "_rss_mb"}
	socks := &stats.Series{Name: name + "_sockets"}
	for _, snap := range sampler.Samples {
		cpu.Append(snap.At, snap.CPUTime.Seconds())
		vmem.Append(snap.At, float64(snap.VMem)/(1<<20))
		rss.Append(snap.At, float64(snap.RSS)/(1<<20))
		socks.Append(snap.At, float64(snap.Sockets))
	}
	return []*stats.Series{cpu, vmem, rss, socks}
}

// WriteFigureSeries regenerates the time-series behind Fig. 7a–e (all six
// RMs at p.Fig7Nodes) and Fig. 9a–c (Slurm vs ESlurm at p.Fig9Nodes) and
// writes one CSV per metric into dir: fig7_cpu.csv, fig7_vmem.csv,
// fig7_rss.csv, fig7_sockets.csv and the fig9_* counterparts. The files
// re-plot directly with any tool that reads CSV.
func WriteFigureSeries(dir string, p Params) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	interval := time.Minute

	fig7 := []seriesContender{
		{"sge", 0, func(c *cluster.Cluster) rm.RM { return rm.NewCentralized(c, rm.SGEProfile()) }},
		{"torque", 0, func(c *cluster.Cluster) rm.RM { return rm.NewCentralized(c, rm.TorqueProfile()) }},
		{"openpbs", 0, func(c *cluster.Cluster) rm.RM { return rm.NewCentralized(c, rm.OpenPBSProfile()) }},
		{"lsf", 0, func(c *cluster.Cluster) rm.RM { return rm.NewCentralized(c, rm.LSFProfile()) }},
		{"slurm", 0, func(c *cluster.Cluster) rm.RM { return rm.NewCentralized(c, rm.SlurmProfile()) }},
		{"eslurm", 2, func(c *cluster.Cluster) rm.RM { return rm.NewESlurm(c) }},
	}
	if err := writeSeriesSet(dir, "fig7", fig7, p.Fig7Nodes, p.Fig7Span, interval); err != nil {
		return err
	}
	fig9 := []seriesContender{fig7[4], fig7[5]} // Slurm vs ESlurm
	return writeSeriesSet(dir, "fig9", fig9, p.Fig9Nodes, p.Fig9Span, interval)
}

// seriesContender names one RM line of a figure.
type seriesContender struct {
	name string
	sats int
	mk   func(c *cluster.Cluster) rm.RM
}

func writeSeriesSet(dir, prefix string, cs []seriesContender, nodes int, span, interval time.Duration) error {
	if span == 0 {
		span = time.Hour
	}
	// metric index -> per-RM series
	byMetric := make([][]*stats.Series, 4)
	for i, c := range cs {
		ss := resourceSeries(c.mk, c.name, nodes, c.sats, span, interval, int64(500+i))
		for m := 0; m < 4; m++ {
			byMetric[m] = append(byMetric[m], ss[m])
		}
	}
	names := []string{"cpu", "vmem", "rss", "sockets"}
	for m, metric := range names {
		path := filepath.Join(dir, fmt.Sprintf("%s_%s.csv", prefix, metric))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := stats.WriteCSV(f, byMetric[m]...); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
