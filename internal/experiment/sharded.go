package experiment

import (
	"fmt"
	"sort"
	"time"

	"eslurm/internal/cluster"
	"eslurm/internal/rm"
	"eslurm/internal/sched"
	"eslurm/internal/topo"
)

// Sharded experiment drivers: the two multi-second experiments (fig7f,
// fig10) rebuilt on the shard-parallel kernel. The partitioning rule is
// topological — cell 0 holds the control plane (master + satellites),
// and every compute rack is its own cell — so the cell layout is a
// function of the cluster size alone and the digests are invariant
// under the worker count (`-shards N` picks N workers; it never moves a
// node between cells).
//
// The sharded drivers are twins, not byte-replays, of the single-engine
// experiments: the wire model adds acknowledgement latency (see
// comm.ShardBroadcaster), so their absolute durations form their own
// pinned contract, checked by the shard-sweep determinism tests.

// shardLayout returns the cell count and node→cell mapping for a
// cluster of the given shape: control plane on cell 0, computes by rack
// (512 nodes per rack under the default Tianhe-like hierarchy).
func shardLayout(computes, satellites int) (cells int, cellOf func(cluster.NodeID, cluster.Role) int) {
	tp := topo.Default()
	per := tp.NodesPerRack()
	racks := (computes + per - 1) / per
	if racks < 1 {
		racks = 1
	}
	firstCompute := 1 + satellites
	return 1 + racks, func(id cluster.NodeID, role cluster.Role) int {
		if role != cluster.RoleCompute {
			return 0
		}
		return 1 + tp.Rack(cluster.NodeID(int(id)-firstCompute))
	}
}

// newShardedCluster builds the probe cluster for a sharded experiment.
func newShardedCluster(clusterNodes, satellites, workers int, seed int64) *cluster.ShardedCluster {
	cells, cellOf := shardLayout(clusterNodes, satellites)
	return cluster.NewSharded(cluster.ShardConfig{
		Computes:   clusterNodes,
		Satellites: satellites,
		Cells:      cells,
		CellOf:     cellOf,
		Workers:    workers,
		Seed:       seed,
	})
}

// probeSatellites mirrors the satellite sizing rule of OccupationProbe.
func probeSatellites(clusterNodes int) int {
	if clusterNodes >= 1024 {
		return 2 + clusterNodes/5120
	}
	return 1
}

// ShardedOccupationProbe is the sharded twin of OccupationProbe: it
// measures the named RM's job load and termination latencies for one
// job of the given size, with failedFrac of the job's nodes down,
// executing the simulation across rack cells on `workers` goroutines.
// The result is independent of workers.
func ShardedOccupationProbe(rmName string, clusterNodes, jobNodes int, failedFrac float64, workers int) (load, term time.Duration) {
	sc := newShardedCluster(clusterNodes, probeSatellites(clusterNodes), workers, 42)
	g := sc.Group()
	r := rm.NewShardedByName(rmName, sc)
	r.Start()
	g.RunUntil(2 * time.Second)
	if failedFrac > 0 {
		// The same spread rule as failSpread, pre-scheduled at the
		// current instant on every cell.
		comps := sc.Computes()
		count := int(float64(jobNodes) * failedFrac)
		stride := 1
		if count > 0 {
			stride = len(comps) / count
			if stride == 0 {
				stride = 1
			}
		}
		now := g.Cell(0).Now()
		for i := 0; i < count && i*stride < len(comps); i++ {
			sc.ScheduleFail(comps[i*stride], now, 0)
		}
		g.RunUntil(now)
	}
	nodes := sc.Computes()[:jobNodes]
	start := g.Cell(0).Now()
	r.LoadJob(nodes, func(d time.Duration) { load = d })
	g.RunUntil(start + 30*time.Minute)
	termStart := g.Cell(0).Now()
	r.TerminateJob(nodes, func(d time.Duration) { term = d })
	g.RunUntil(termStart + 30*time.Minute)
	r.Stop()
	return load, term
}

// ShardedOccupationTime is the sharded twin of OccupationTime.
func ShardedOccupationTime(rmName string, clusterNodes, jobNodes, workers int) time.Duration {
	load, term := ShardedOccupationProbe(rmName, clusterNodes, jobNodes, 0, workers)
	return load + 10*time.Second + term
}

// fig7fRMNames lists the Fig. 7f contenders in row order.
func fig7fRMNames() []string {
	return []string{"SGE", "Torque", "OpenPBS", "LSF", "Slurm", "ESlurm"}
}

// Fig7fSharded is the sharded twin of Fig7f, running each occupation
// probe across rack cells on `workers` goroutines.
func Fig7fSharded(clusterNodes int, sizes []int, workers int) *Table {
	if len(sizes) == 0 {
		sizes = []int{64, 256, 1024, 2048, 4096}
	}
	t := &Table{
		ID:      "fig7f",
		Title:   fmt.Sprintf("Job occupation time vs job size (%d-node cluster, 10s jobs, sharded kernel)", clusterNodes),
		Columns: append([]string{"RM"}, sizesHeader(sizes)...),
	}
	for _, name := range fig7fRMNames() {
		row := []string{name}
		for _, size := range sizes {
			if size > clusterNodes {
				row = append(row, "-")
				continue
			}
			row = append(row, fmtDur(ShardedOccupationTime(name, clusterNodes, size, workers)))
		}
		t.AddRow(row...)
	}
	t.Note = "sharded kernel (ack-based wire model): occupation includes acknowledgement latency; shapes match the single-engine run"
	return t
}

// shardedOverheadLookup is the sharded twin of overheadLookup.
func shardedOverheadLookup(rmName string, clusterNodes int, failedFrac float64, workers int) sched.Overhead {
	var sizes []int
	for _, s := range []int{16, 64, 256, 1024, 4096, 16384} {
		if s < clusterNodes {
			sizes = append(sizes, s)
		}
	}
	sizes = append(sizes, clusterNodes)
	loads := make([]time.Duration, len(sizes))
	terms := make([]time.Duration, len(sizes))
	for i, s := range sizes {
		loads[i], terms[i] = ShardedOccupationProbe(rmName, clusterNodes, s, failedFrac, workers)
	}
	return func(n int) (time.Duration, time.Duration) {
		if n <= sizes[0] {
			return loads[0], terms[0]
		}
		i := sort.SearchInts(sizes, n)
		if i >= len(sizes) {
			return loads[len(sizes)-1], terms[len(sizes)-1]
		}
		if sizes[i] == n || i == 0 {
			return loads[i], terms[i]
		}
		f := float64(n-sizes[i-1]) / float64(sizes[i]-sizes[i-1])
		lerp := func(a, b time.Duration) time.Duration {
			return a + time.Duration(f*float64(b-a))
		}
		return lerp(loads[i-1], loads[i]), lerp(terms[i-1], terms[i])
	}
}

// Fig10Sharded is the sharded twin of Fig10: identical scheduler replay,
// with the per-RM communication overheads probed on the sharded kernel.
func Fig10Sharded(scales []int, jobsPerScale, workers int) []*Table {
	if len(scales) == 0 {
		scales = []int{1024, 4096, 16384, 20480}
	}
	if jobsPerScale == 0 {
		jobsPerScale = 6000
	}
	util := &Table{ID: "fig10a", Title: "System utilization (higher is better, sharded kernel)"}
	wait := &Table{ID: "fig10b", Title: "Average job waiting time (lower is better, sharded kernel)"}
	slow := &Table{ID: "fig10c", Title: "Average bounded slowdown (lower is better, sharded kernel)"}
	cols := []string{"RM"}
	for _, s := range scales {
		cols = append(cols, fmt.Sprintf("%d nodes", s))
	}
	util.Columns, wait.Columns, slow.Columns = cols, cols, cols

	contenders := []struct {
		name     string
		maxScale int
	}{
		{"SGE", 1024},
		{"Torque", 1024},
		{"OpenPBS", 4096},
		{"LSF", 4096},
		{"Slurm", 1 << 30},
		{"ESlurm", 1 << 30},
	}
	for _, ct := range contenders {
		uRow, wRow, sRow := []string{ct.name}, []string{ct.name}, []string{ct.name}
		for _, scale := range scales {
			if scale > ct.maxScale {
				uRow, wRow, sRow = append(uRow, "-"), append(wRow, "-"), append(sRow, "-")
				continue
			}
			res := runFig10CellSharded(ct.name, scale, jobsPerScale, workers)
			uRow = append(uRow, fmtPct(res.Utilization))
			wRow = append(wRow, fmtDur(res.AvgWait))
			sRow = append(sRow, fmt.Sprintf("%.1f", res.AvgBoundedSlowdown))
		}
		util.AddRow(uRow...)
		wait.AddRow(wRow...)
		slow.AddRow(sRow...)
	}
	note := "sharded kernel: same replay and penalties as fig10, communication overheads probed on the multi-cell substrate"
	util.Note, wait.Note, slow.Note = note, note, note
	return []*Table{util, wait, slow}
}

// runFig10CellSharded mirrors runFig10Cell with sharded probes. The
// scheduler replay itself (sched.Run) is engine-free and shared.
func runFig10CellSharded(name string, scale, jobs, workers int) sched.Result {
	penalty := responsePenalty(name, scale)
	base := shardedOverheadLookup(name, scale, 0.01, workers)
	cfg := fig10SchedConfig(name, scale, withPenalty(base, penalty))
	return sched.Run(scaleTrace(scale, jobs), cfg)
}

// ShardAware reports whether an experiment honors Params.Shards (runs on
// the sharded kernel when shards > 0). The remaining experiments always
// run single-engine regardless of the flag.
func ShardAware(id string) bool {
	return id == "fig7f" || id == "fig10"
}
