package experiment

import (
	"strings"
	"testing"
	"time"

	"eslurm/internal/cluster"
	"eslurm/internal/rm"
)

// shardProbeRun executes the full occupation-probe sequence on the
// sharded kernel with digesting enabled and returns the trace digest,
// the merged metrics snapshot text and the probe results. It is the
// instrumented twin of ShardedOccupationProbe.
func shardProbeRun(t *testing.T, rmName string, computes, jobNodes, workers int) (uint64, string, time.Duration, time.Duration) {
	t.Helper()
	sc := newShardedCluster(computes, probeSatellites(computes), workers, 42)
	g := sc.Group()
	g.EnableDigest()
	r := rm.NewShardedByName(rmName, sc)
	r.Start()
	g.RunUntil(2 * time.Second)
	nodes := sc.Computes()[:jobNodes]
	var load, term time.Duration
	start := g.Cell(0).Now()
	r.LoadJob(nodes, func(d time.Duration) { load = d })
	g.RunUntil(start + 30*time.Minute)
	termStart := g.Cell(0).Now()
	r.TerminateJob(nodes, func(d time.Duration) { term = d })
	g.RunUntil(termStart + 30*time.Minute)
	r.Stop()
	var sb strings.Builder
	if err := g.MergedMetrics().WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	return g.Digest(), sb.String(), load, term
}

// TestShardSweepDeterminism is the shard-sweep gate of the sharded
// kernel: one full experiment probe per RM family, executed at 1, 2, 4
// and 8 workers, must produce byte-identical trace digests, metrics
// snapshots and results. 8 workers exceeds the 3-cell layout of a
// 600-node cluster, covering the workers > cells clamp.
func TestShardSweepDeterminism(t *testing.T) {
	for _, name := range []string{"Slurm", "ESlurm"} {
		refD, refM, refL, refT := shardProbeRun(t, name, 600, 64, 1)
		if refL <= 0 || refT <= 0 {
			t.Fatalf("%s: probe returned load=%v term=%v, want > 0", name, refL, refT)
		}
		for _, w := range []int{2, 4, 8} {
			d, m, l, tm := shardProbeRun(t, name, 600, 64, w)
			if d != refD {
				t.Errorf("%s workers=%d digest %#x, want %#x", name, w, d, refD)
			}
			if l != refL || tm != refT {
				t.Errorf("%s workers=%d load=%v term=%v, want %v/%v", name, w, l, tm, refL, refT)
			}
			if m != refM {
				t.Errorf("%s workers=%d merged metrics differ from single-worker run", name, w)
			}
		}
	}
}

// TestShardSweepPinned pins the sharded probe contract for one
// configuration: any change to these values is a change to the sharded
// kernel's deterministic trace and must be made deliberately.
func TestShardSweepPinned(t *testing.T) {
	d, _, load, term := shardProbeRun(t, "ESlurm", 600, 64, 2)
	const wantDigest = uint64(0x88b136cf0563b272)
	if d != wantDigest {
		t.Errorf("digest %#x, want %#x", d, wantDigest)
	}
	if want := 2391998 * time.Nanosecond; load != want {
		t.Errorf("load %v, want %v", load, want)
	}
	if want := 2414449 * time.Nanosecond; term != want {
		t.Errorf("term %v, want %v", term, want)
	}
}

// TestShardProbeFailureBackground checks the pre-scheduled failure
// spread: results stay worker-invariant with a failure background, and
// the failures actually cost something.
func TestShardProbeFailureBackground(t *testing.T) {
	run := func(w int) (time.Duration, time.Duration) {
		return ShardedOccupationProbe("Slurm", 600, 64, 0.05, w)
	}
	healthyLoad, _ := ShardedOccupationProbe("Slurm", 600, 64, 0, 1)
	refL, refT := run(1)
	if refL <= healthyLoad {
		t.Errorf("load with failures %v <= healthy load %v; retries not charged", refL, healthyLoad)
	}
	for _, w := range []int{2, 8} {
		l, tm := run(w)
		if l != refL || tm != refT {
			t.Errorf("workers=%d load=%v term=%v, want %v/%v", w, l, tm, refL, refT)
		}
	}
}

// TestShardLayoutEdges covers the partitioning rule's boundary shapes.
func TestShardLayoutEdges(t *testing.T) {
	cells, cellOf := shardLayout(1, 1)
	if cells != 2 {
		t.Errorf("1-compute layout: %d cells, want 2 (control + one single-node rack)", cells)
	}
	if c := cellOf(2, cluster.RoleCompute); c != 1 { // compute NodeID 2 (after master 0 + sat 1)
		t.Errorf("single compute on cell %d, want 1", c)
	}
	cells, _ = shardLayout(513, 1)
	if cells != 3 {
		t.Errorf("513-compute layout: %d cells, want 3 (rack boundary spill)", cells)
	}
	// A single-node shard must still run: 1 compute, more workers than cells.
	load, term := ShardedOccupationProbe("Slurm", 1, 1, 0, 8)
	if load <= 0 || term <= 0 {
		t.Errorf("single-node probe load=%v term=%v, want > 0", load, term)
	}
}

// TestFig7fShardedTable renders a small sharded Fig. 7f at two worker
// counts and requires byte-identical reports.
func TestFig7fShardedTable(t *testing.T) {
	render := func(w int) string {
		var sb strings.Builder
		Fig7fSharded(600, []int{16, 64}, w).Fprint(&sb)
		return sb.String()
	}
	a, b := render(1), render(4)
	if a != b {
		t.Errorf("fig7f report differs between 1 and 4 workers:\n%s\nvs\n%s", a, b)
	}
	if !strings.Contains(a, "ESlurm") || !strings.Contains(a, "sharded kernel") {
		t.Errorf("fig7f report missing expected rows/note:\n%s", a)
	}
}
