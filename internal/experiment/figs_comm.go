package experiment

import (
	"fmt"
	"time"

	"eslurm/internal/cluster"
	"eslurm/internal/comm"
	"eslurm/internal/core"
	"eslurm/internal/faults"
	"eslurm/internal/monitor"
	"eslurm/internal/predict"
	"eslurm/internal/rm"
	"eslurm/internal/simnet"
)

// failSpread fails `count` compute nodes spread uniformly across the
// cluster and returns the failed set.
func failSpread(c *cluster.Cluster, count int) map[cluster.NodeID]bool {
	failed := make(map[cluster.NodeID]bool, count)
	comps := c.Computes()
	if count <= 0 || len(comps) == 0 {
		return failed
	}
	stride := len(comps) / count
	if stride == 0 {
		stride = 1
	}
	for i := 0; i < count && i*stride < len(comps); i++ {
		id := comps[i*stride]
		c.Fail(id)
		failed[id] = true
	}
	return failed
}

// Fig7f reproduces the job-occupation-time experiment: parallel jobs of
// different sizes with a fixed 10 s runtime loaded through each of the six
// RMs; occupation spans allocation, spawn, the run itself, and reclaim.
func Fig7f(clusterNodes int, sizes []int) *Table {
	if len(sizes) == 0 {
		sizes = []int{64, 256, 1024, 2048, 4096}
	}
	t := &Table{
		ID:      "fig7f",
		Title:   fmt.Sprintf("Job occupation time vs job size (%d-node cluster, 10s jobs)", clusterNodes),
		Columns: append([]string{"RM"}, sizesHeader(sizes)...),
	}
	type mk struct {
		name string
		new  func(c *cluster.Cluster) rm.RM
	}
	mks := []mk{
		{"SGE", func(c *cluster.Cluster) rm.RM { return rm.NewCentralized(c, rm.SGEProfile()) }},
		{"Torque", func(c *cluster.Cluster) rm.RM { return rm.NewCentralized(c, rm.TorqueProfile()) }},
		{"OpenPBS", func(c *cluster.Cluster) rm.RM { return rm.NewCentralized(c, rm.OpenPBSProfile()) }},
		{"LSF", func(c *cluster.Cluster) rm.RM { return rm.NewCentralized(c, rm.LSFProfile()) }},
		{"Slurm", func(c *cluster.Cluster) rm.RM { return rm.NewCentralized(c, rm.SlurmProfile()) }},
		{"ESlurm", func(c *cluster.Cluster) rm.RM { return rm.NewESlurm(c) }},
	}
	for _, m := range mks {
		row := []string{m.name}
		for _, size := range sizes {
			if size > clusterNodes {
				row = append(row, "-")
				continue
			}
			row = append(row, fmtDur(OccupationTime(m.new, clusterNodes, size)))
		}
		t.AddRow(row...)
	}
	t.Note = "paper: SGE/Torque/OpenPBS explode past 1K nodes; ESlurm stays below 15s at every size"
	return t
}

func sizesHeader(sizes []int) []string {
	out := make([]string, len(sizes))
	for i, s := range sizes {
		out[i] = fmt.Sprintf("%d nodes", s)
	}
	return out
}

// OccupationTime measures one job's occupation (submit → resources fully
// released) of the given size on an otherwise idle cluster under the given
// RM: allocation+spawn (load), the fixed 10 s run, and reclaim (term).
func OccupationTime(mk func(c *cluster.Cluster) rm.RM, clusterNodes, jobNodes int) time.Duration {
	load, term := OccupationProbe(mk, clusterNodes, jobNodes, 0)
	return load + 10*time.Second + term
}

// OccupationProbe measures the RM's job load and termination latencies for
// one job of the given size, with failedFrac of the cluster's nodes down
// (the production failure background). The scheduling drivers call it per
// job size to build their sched.Overhead lookups.
func OccupationProbe(mk func(c *cluster.Cluster) rm.RM, clusterNodes, jobNodes int, failedFrac float64) (load, term time.Duration) {
	e := simnet.NewEngine(42)
	satellites := 1
	if clusterNodes >= 1024 {
		satellites = 2 + clusterNodes/5120 // paper: ~1 satellite per 5K slaves
	}
	c := cluster.New(e, cluster.Config{Computes: clusterNodes, Satellites: satellites})
	r := mk(c)
	r.Start()
	e.RunUntil(2 * time.Second)
	if failedFrac > 0 {
		// Fail nodes outside the probed job (a failed allocation would be
		// replaced by the scheduler); the broadcast still traverses them
		// in heartbeats but the job path sees a healthy allocation. For
		// tree structures the job's own relay nodes matter, so also fail
		// a proportional slice inside the job.
		failSpread(c, int(float64(jobNodes)*failedFrac))
	}
	nodes := c.Computes()[:jobNodes]
	start := e.Now()
	r.LoadJob(nodes, func(d time.Duration) { load = d })
	e.RunUntil(start + 30*time.Minute)
	termStart := e.Now()
	r.TerminateJob(nodes, func(d time.Duration) { term = d })
	e.RunUntil(termStart + 30*time.Minute)
	r.Stop()
	return load, term
}

// Fig8a reproduces the message-broadcast-time comparison for the job
// loading (message 1) and job termination (message 2) messages on a 4K
// cluster with a production-like 2% failure mix: Slurm's forwarding tree,
// ESlurm without FP-Tree (null predictor), and full ESlurm.
func Fig8a(nodes int) *Table {
	t := &Table{
		ID:      "fig8a",
		Title:   fmt.Sprintf("Average broadcast time, %d nodes, 2%% failed", nodes),
		Columns: []string{"System", "job loading msg", "job termination msg"},
	}
	loadBytes, termBytes := 4096, 1024

	type variant struct {
		name string
		run  func(size int) time.Duration
	}
	slurmTree := func(size int) time.Duration {
		e := simnet.NewEngine(7)
		c := cluster.New(e, cluster.Config{Computes: nodes, Satellites: 1})
		failSpread(c, nodes/50)
		b := comm.NewBroadcaster(c)
		var res comm.Result
		comm.KTree{Width: 50}.Broadcast(b, c.Master().ID, c.Computes(), size, func(r comm.Result) { res = r })
		e.Run()
		return res.DeliveredElapsed
	}
	eslurm := func(fp bool) func(size int) time.Duration {
		return func(size int) time.Duration {
			e := simnet.NewEngine(7)
			sats := 2 + nodes/5120
			c := cluster.New(e, cluster.Config{Computes: nodes, Satellites: sats})
			failed := failSpread(c, nodes/50)
			cfg := core.DefaultConfig()
			var p predict.Predictor = predict.Null{}
			if fp {
				st := predict.Static{}
				for id := range failed {
					st[id] = true
				}
				p = st
			}
			m := core.NewMaster(c, cfg, p)
			m.Start()
			e.RunUntil(2 * time.Second)
			var res comm.Result
			m.Broadcast(c.Computes(), size, func(r comm.Result) { res = r })
			e.RunUntil(e.Now() + 10*time.Minute)
			m.Stop()
			return res.DeliveredElapsed
		}
	}
	variants := []variant{
		{"Slurm (fanout tree)", slurmTree},
		{"ESlurm w/o FP-Tree", eslurm(false)},
		{"ESlurm", eslurm(true)},
	}
	for _, v := range variants {
		t.AddRow(v.name, fmtDur(v.run(loadBytes)), fmtDur(v.run(termBytes)))
	}
	t.Note = "paper: ESlurm cuts average broadcast time 63.7%/73.6% vs Slurm; FP-Tree alone contributes 36.3%/54.9%"
	return t
}

// Fig8b reproduces the communication-structure comparison under failures:
// broadcast time of ring, star, shared-memory, plain tree and FP-Tree
// structures at increasing failure ratios.
func Fig8b(nodes int, ratios []float64) *Table {
	if len(ratios) == 0 {
		ratios = []float64{0, 0.05, 0.10, 0.20, 0.30}
	}
	cols := []string{"structure"}
	for _, r := range ratios {
		cols = append(cols, fmtPct(r)+" failed")
	}
	t := &Table{
		ID:      "fig8b",
		Title:   fmt.Sprintf("Broadcast time vs failure ratio (%d nodes, job loading msg)", nodes),
		Columns: cols,
	}

	run := func(s comm.Structure, ratio float64, predicted bool) time.Duration {
		e := simnet.NewEngine(11)
		c := cluster.New(e, cluster.Config{Computes: nodes, Satellites: 1})
		failed := failSpread(c, int(float64(nodes)*ratio))
		if fp, ok := s.(comm.FPTree); ok && predicted {
			st := predict.Static{}
			for id := range failed {
				st[id] = true
			}
			fp.Predictor = st
			s = fp
		}
		b := comm.NewBroadcaster(c)
		var res comm.Result
		s.Broadcast(b, c.Satellites()[0], c.Computes(), 4096, func(r comm.Result) { res = r })
		e.Run()
		return res.DeliveredElapsed
	}

	structures := []comm.Structure{
		comm.Ring{}, comm.Star{}, comm.SharedMem{}, comm.KTree{}, comm.FPTree{},
	}
	for _, s := range structures {
		row := []string{s.Name()}
		for _, ratio := range ratios {
			row = append(row, fmtDur(run(s, ratio, true)))
		}
		t.AddRow(row...)
	}
	t.Note = "paper: ring/star/tree degrade sharply; shared-memory flat; FP-Tree minimal and below 10s even at 30%"
	return t
}

// Fig11a reproduces the satellite-count sweep: heartbeat-message broadcast
// time on the full-scale NG-Tianhe (20K+ nodes) for different numbers of
// satellite nodes.
func Fig11a(nodes int, satCounts []int) *Table {
	if len(satCounts) == 0 {
		satCounts = []int{5, 10, 20, 30, 40, 50, 60}
	}
	t := &Table{
		ID:      "fig11a",
		Title:   fmt.Sprintf("Heartbeat broadcast time vs satellite count (%d nodes)", nodes),
		Columns: []string{"satellites", "broadcast time"},
	}
	for _, m := range satCounts {
		e := simnet.NewEngine(13)
		c := cluster.New(e, cluster.Config{Computes: nodes, Satellites: m})
		// Production failure background: ~1% down.
		failSpread(c, nodes/100)
		master := core.NewMaster(c, core.DefaultConfig(), predict.Oracle{Cluster: c})
		master.Start()
		e.RunUntil(2 * time.Second)
		var res comm.Result
		master.Broadcast(c.Computes(), master.Config().HeartbeatMsgBytes, func(r comm.Result) { res = r })
		e.RunUntil(e.Now() + 10*time.Minute)
		master.Stop()
		t.AddRow(fmt.Sprintf("%d", m), fmtDur(res.DeliveredElapsed))
	}
	t.Note = "paper: ~20 satellites optimal at 20K+ nodes (≈1 per 5K slaves)"
	return t
}

// Placement reproduces the FP-Tree node-placement statistics of §VII-A: a
// multi-day deployment with small failure events plus one large hardware-
// replacement event, an alert-driven predictor fed by the monitoring
// subsystem, and the fraction of actually-failed nodes that FP-Tree placed
// at leaves (paper: 81.7%).
func Placement(nodes int, days int) *Table {
	if days <= 0 {
		days = 2
	}
	e := simnet.NewEngine(17)
	sats := 2
	c := cluster.New(e, cluster.Config{Computes: nodes, Satellites: sats})
	sub := monitor.New(c, monitor.Config{DetectionProb: 0.85, FalseAlertsPerNodeDay: 0.05})
	pred := predict.NewAlertDriven(e, sub, 45*time.Minute)

	cfg := core.DefaultConfig()
	cfg.HeartbeatInterval = 5 * time.Minute
	// Measure the monitoring pipeline alone, as the paper does: without
	// the master's own unreachable-node feedback, placement recall is
	// bounded by the alert detector.
	cfg.DisableSuspectFeedback = true
	m := core.NewMaster(c, cfg, pred)
	stats := &comm.PlacementStats{}
	m.Placement = stats
	m.Start()

	// Failure campaign mirroring the paper's deployment: a few single-node
	// failures per day plus one large hardware-replacement event on the
	// middle day. ~18% of failures are silent to monitoring (the fault
	// also severs the monitoring path), which bounds prediction recall.
	horizon := time.Duration(days) * 24 * time.Hour
	campaign := faults.New(c, sub, 0.18)
	campaign.Background(4, horizon, 2*time.Hour, 5*time.Hour)
	campaign.Burst(horizon/2, nodes/33, 6*time.Hour)

	e.RunUntil(horizon)
	m.Stop()
	// Drain in-flight broadcasts; the monitor's background noise process
	// never terminates, so a full Run() would spin forever.
	e.RunUntil(horizon + 30*time.Minute)

	t := &Table{
		ID:      "placement",
		Title:   fmt.Sprintf("FP-Tree leaf placement of failed nodes (%d nodes, %d days)", nodes, days),
		Columns: []string{"metric", "value"},
	}
	t.AddRow("FP-Trees built", fmt.Sprintf("%d", stats.TreesBuilt))
	avg := 0
	if stats.TreesBuilt > 0 {
		avg = stats.NodesTotal / stats.TreesBuilt
	}
	t.AddRow("avg nodes per FP-Tree", fmt.Sprintf("%d", avg))
	t.AddRow("failure events injected", fmt.Sprintf("%d (%d silent)", len(campaign.Events), campaign.SilentCount()))
	t.AddRow("failed nodes encountered", fmt.Sprintf("%d", stats.FailedEncountered))
	t.AddRow("placed at leaves", fmt.Sprintf("%d", stats.FailedAtLeaves))
	t.AddRow("leaf placement ratio", fmtPct(stats.LeafPlacementRatio()))
	t.Note = "paper: 81.7% of failed nodes placed on leaves over a 10-day 4K-node deployment"
	return t
}
