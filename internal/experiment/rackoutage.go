package experiment

import (
	"fmt"
	"time"

	"eslurm/internal/cluster"
	"eslurm/internal/comm"
	"eslurm/internal/faults"
	"eslurm/internal/monitor"
	"eslurm/internal/predict"
	"eslurm/internal/simnet"
	"eslurm/internal/topo"
)

// RackOutage is a beyond-the-paper experiment: a whole rack loses power,
// taking a *contiguous* block of node IDs down — the worst case for an
// ID-ordered relay tree, whose dead rack forms entire dead subtrees and
// triggers cascading parent adoptions. The FP-Tree with the alert-driven
// predictor absorbs the same outage by pinning the whole rack to leaf
// positions.
func RackOutage(nodes int) *Table {
	tp := topo.Default()
	t := &Table{
		ID:      "rack-outage",
		Title:   fmt.Sprintf("Broadcast during a full rack outage (%d nodes, %d-node rack dead)", nodes, tp.NodesPerRack()),
		Columns: []string{"structure", "clean", "during outage"},
	}

	run := func(s comm.Structure, outage bool) time.Duration {
		e := simnet.NewEngine(53)
		c := cluster.New(e, cluster.Config{Computes: nodes, Satellites: 1})
		sub := monitor.New(c, monitor.Config{DetectionProb: 1.0})
		pred := predict.NewAlertDriven(e, sub, time.Hour)
		if fp, ok := s.(comm.FPTree); ok {
			fp.Predictor = pred
			s = fp
		}
		if outage {
			campaign := faults.New(c, sub, 0)
			campaign.RackOutage(tp, 1, 30*time.Minute, 4*time.Hour)
		}
		// Broadcast one hour in: the rack is down, alerts have landed.
		var res comm.Result
		e.Schedule(time.Hour, func() {
			b := comm.NewBroadcaster(c)
			s.Broadcast(b, c.Satellites()[0], c.Computes(), 4096, func(r comm.Result) { res = r })
		})
		e.RunUntil(3 * time.Hour)
		return res.DeliveredElapsed
	}

	for _, s := range []comm.Structure{comm.KTree{}, comm.FPTree{}} {
		t.AddRow(s.Name(), fmtDur(run(s, false)), fmtDur(run(s, true)))
	}
	t.Note = "a dead rack is a contiguous ID block: entire subtrees die and the plain tree pays cascaded adoptions; the FP-Tree pins the rack to leaves"
	return t
}
