// Package experiment contains one driver per table and figure of the
// paper's evaluation (Section VII), each emitting the same rows/series the
// paper reports. DESIGN.md §3 maps experiment IDs to drivers; EXPERIMENTS.md
// records paper-vs-measured values.
//
// Scale note: the paper's runs span 4K–20K+ nodes over 24 hours to 10
// days. Every driver here reproduces the paper's node counts by default
// but exposes a duration/job-count knob so the default `benchrunner`
// invocation finishes in minutes; rates are extrapolated where the paper
// reports long-horizon totals (flagged in the table footer).
//
// Determinism: each driver runs independent, fixed-seed simulations, and
// the concurrent runner only parallelizes *across* engines — emitted
// tables are byte-identical for every worker-pool size.
package experiment

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Table is a generic result table (a figure's data series is a table with
// an X column).
type Table struct {
	// ID is the experiment identifier, e.g. "fig8b" or "table5".
	ID string
	// Title describes the artifact being reproduced.
	Title string
	// Columns are the header cells.
	Columns []string
	// Rows are the data cells, already formatted.
	Rows [][]string
	// Note carries caveats (e.g. extrapolation factors).
	Note string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	if t.Note != "" {
		fmt.Fprintf(w, "  note: %s\n", t.Note)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// fmtDur renders a duration with sensible precision for tables.
func fmtDur(d time.Duration) string {
	switch {
	case d == 0:
		return "0"
	case d < time.Millisecond:
		return fmt.Sprintf("%.0fµs", float64(d)/float64(time.Microsecond))
	case d < time.Second:
		return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
	case d < time.Minute:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d < time.Hour:
		return fmt.Sprintf("%.1fm", d.Minutes())
	default:
		return fmt.Sprintf("%.1fh", d.Hours())
	}
}

// fmtBytes renders byte counts in binary units.
func fmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2fGB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

// fmtPct renders a ratio as a percentage.
func fmtPct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }

// fmtF renders a float with 2–3 significant decimals.
func fmtF(f float64) string { return fmt.Sprintf("%.3f", f) }

// Table1 reproduces Table I verbatim: the resource managers of the top-10
// supercomputers as of November 2021 — context for the centralized-RM
// problem statement, not a measurement.
func Table1() *Table {
	t := &Table{
		ID:      "table1",
		Title:   "Resource managers of top-10 supercomputers (Nov 2021)",
		Columns: []string{"Rank", "System", "RM"},
	}
	rows := [][2]string{
		{"Fugaku", "Fujitsu"}, {"Summit", "LSF"}, {"Sierra", "LSF"},
		{"Sunway Taihulight", "LSF"}, {"Perlmutter", "Slurm"}, {"Selene", "Slurm"},
		{"Tianhe-2A", "Slurm"}, {"JUWELS", "Slurm"}, {"HPC5", "unknown"},
		{"Frontera", "Slurm"},
	}
	for i, r := range rows {
		t.AddRow(fmt.Sprintf("%d", i+1), r[0], r[1])
	}
	return t
}
