package mlkit

import "math"

// BayesianRidge is Bayesian linear regression with evidence-maximized
// hyperparameters (MacKay's iterative update), the third member of the
// IRPA ensemble baseline (Wu et al.).
type BayesianRidge struct {
	// Weights includes the intercept as the last element.
	Weights []float64
	// Alpha is the noise precision, Lambda the weight precision.
	Alpha, Lambda float64
	iters         int
}

// BayesianRidgeFit fits the model on row-major x with targets y, running
// at most maxIter evidence updates (0 defaults to 50).
func BayesianRidgeFit(x [][]float64, y []float64, maxIter int) *BayesianRidge {
	n := len(x)
	m := &BayesianRidge{Alpha: 1, Lambda: 1}
	if n == 0 {
		return m
	}
	if maxIter <= 0 {
		maxIter = 50
	}
	p := len(x[0]) + 1 // +1 intercept

	// Design matrix with intercept column.
	xd := NewMatrix(n, p)
	for i, row := range x {
		for j, v := range row {
			xd.Set(i, j, v)
		}
		xd.Set(i, p-1, 1)
	}
	gram := Gram(xd)
	xty := MulTVec(xd, y)

	var w []float64
	for it := 0; it < maxIter; it++ {
		m.iters = it + 1
		// Posterior mean: (λI + αXᵀX)⁻¹ αXᵀy.
		a := NewMatrix(p, p)
		for i := 0; i < p; i++ {
			for j := 0; j < p; j++ {
				a.Set(i, j, m.Alpha*gram.At(i, j))
			}
			a.Add(i, i, m.Lambda)
		}
		b := make([]float64, p)
		for j := range b {
			b[j] = m.Alpha * xty[j]
		}
		var err error
		w, err = Solve(a, b)
		if err != nil {
			// Degenerate design: heavier regularization and retry next
			// iteration.
			m.Lambda *= 10
			continue
		}
		// Effective degrees of freedom γ = p − λ·trace(A⁻¹).
		inv, err := Inverse(a)
		if err != nil {
			m.Lambda *= 10
			continue
		}
		trace := 0.0
		for i := 0; i < p; i++ {
			trace += inv.At(i, i)
		}
		gamma := float64(p) - m.Lambda*trace
		if gamma < 1e-9 {
			gamma = 1e-9
		}
		// Residual sum of squares.
		pred := xd.MulVec(w)
		rss := 0.0
		for i := range y {
			d := y[i] - pred[i]
			rss += d * d
		}
		wss := Dot(w, w)
		newLambda := gamma / math.Max(wss, 1e-12)
		newAlpha := (float64(n) - gamma) / math.Max(rss, 1e-12)
		if newAlpha <= 0 {
			newAlpha = m.Alpha
		}
		if math.Abs(newLambda-m.Lambda) < 1e-6*m.Lambda &&
			math.Abs(newAlpha-m.Alpha) < 1e-6*m.Alpha {
			m.Lambda, m.Alpha = newLambda, newAlpha
			break
		}
		m.Lambda, m.Alpha = newLambda, newAlpha
	}
	m.Weights = w
	return m
}

// Predict evaluates the posterior mean at q.
func (m *BayesianRidge) Predict(q []float64) float64 {
	if len(m.Weights) == 0 {
		return 0
	}
	s := m.Weights[len(m.Weights)-1] // intercept
	for j, v := range q {
		if j < len(m.Weights)-1 {
			s += m.Weights[j] * v
		}
	}
	return s
}

// Iterations returns the number of evidence updates performed.
func (m *BayesianRidge) Iterations() int { return m.iters }
