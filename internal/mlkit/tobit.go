package mlkit

import "math"

// normPDF is the standard normal density.
func normPDF(z float64) float64 {
	return math.Exp(-0.5*z*z) / math.Sqrt(2*math.Pi)
}

// normCDF is the standard normal distribution function.
func normCDF(z float64) float64 {
	return 0.5 * (1 + math.Erf(z/math.Sqrt2))
}

// Tobit is a right-censored (type-1 Tobit) linear regression fitted by
// maximum likelihood — the data-truncation-aware regressor behind the TRIP
// baseline (Fan et al., CLUSTER'17): observed runtimes are censored at the
// requested walltime when the RM kills the job at its limit.
type Tobit struct {
	// Weights includes the intercept as the last element (in standardized
	// feature space).
	Weights []float64
	// Sigma is the fitted noise scale (in standardized target space).
	Sigma float64

	xs    *StandardScaler
	yMean float64
	yStd  float64
	iters int
}

// TobitConfig parameterizes the MLE optimizer.
type TobitConfig struct {
	// MaxIter bounds gradient-ascent steps. Zero defaults to 400.
	MaxIter int
	// LearnRate is the initial step size. Zero defaults to 0.05.
	LearnRate float64
}

// TobitFit fits the model. censored[i] marks observations right-censored
// at their recorded value y[i] (the job hit its walltime limit).
func TobitFit(x [][]float64, y []float64, censored []bool, cfg TobitConfig) *Tobit {
	n := len(x)
	m := &Tobit{Sigma: 1}
	if n == 0 {
		return m
	}
	if len(y) != n || len(censored) != n {
		panic("mlkit: TobitFit requires len(x) == len(y) == len(censored)")
	}
	if cfg.MaxIter <= 0 {
		cfg.MaxIter = 400
	}
	if cfg.LearnRate == 0 {
		cfg.LearnRate = 0.05
	}

	// Standardize features and target for optimizer stability.
	m.xs = FitScaler(x)
	xs := m.xs.TransformAll(x)
	m.yMean = Mean(y)
	m.yStd = math.Sqrt(Variance(y))
	if m.yStd < 1e-12 {
		m.yStd = 1
	}
	ys := make([]float64, n)
	for i, v := range y {
		ys[i] = (v - m.yMean) / m.yStd
	}

	p := len(x[0]) + 1
	w := make([]float64, p) // last = intercept
	logSigma := 0.0

	pred := func(row []float64) float64 {
		s := w[p-1]
		for j, v := range row {
			s += w[j] * v
		}
		return s
	}

	grad := make([]float64, p)
	for it := 0; it < cfg.MaxIter; it++ {
		m.iters = it + 1
		sigma := math.Exp(logSigma)
		for j := range grad {
			grad[j] = 0
		}
		gLogSigma := 0.0
		for i, row := range xs {
			mu := pred(row)
			z := (ys[i] - mu) / sigma
			if !censored[i] {
				// ∂ℓ/∂w = z/σ · x, ∂ℓ/∂logσ = z² − 1.
				f := z / sigma
				for j, v := range row {
					grad[j] += f * v
				}
				grad[p-1] += f
				gLogSigma += z*z - 1
			} else {
				// Right-censored at ys[i]: ℓ = log(1 − Φ(z)).
				surv := 1 - normCDF(z)
				if surv < 1e-12 {
					surv = 1e-12
				}
				lambda := normPDF(z) / surv
				f := lambda / sigma
				for j, v := range row {
					grad[j] += f * v
				}
				grad[p-1] += f
				gLogSigma += lambda * z
			}
		}
		// Average and step with decay.
		lr := cfg.LearnRate / (1 + 0.01*float64(it))
		scale := lr / float64(n)
		maxStep := 0.0
		for j := range w {
			step := scale * grad[j]
			w[j] += step
			if s := math.Abs(step); s > maxStep {
				maxStep = s
			}
		}
		logSigma += scale * gLogSigma
		if logSigma > 3 {
			logSigma = 3
		} else if logSigma < -6 {
			logSigma = -6
		}
		if maxStep < 1e-7 {
			break
		}
	}
	m.Weights = w
	m.Sigma = math.Exp(logSigma)
	return m
}

// Predict returns the fitted latent mean at q, mapped back to the original
// target scale.
func (m *Tobit) Predict(q []float64) float64 {
	if len(m.Weights) == 0 {
		return 0
	}
	row := m.xs.Transform(q)
	s := m.Weights[len(m.Weights)-1]
	for j, v := range row {
		if j < len(m.Weights)-1 {
			s += m.Weights[j] * v
		}
	}
	return s*m.yStd + m.yMean
}

// Iterations returns the optimizer step count.
func (m *Tobit) Iterations() int { return m.iters }
