package mlkit

import (
	"math"
	"math/rand"
	"sort"
)

// TreeConfig parameterizes CART regression-tree induction.
type TreeConfig struct {
	// MaxDepth limits the tree height. Zero defaults to 12.
	MaxDepth int
	// MinSamplesLeaf is the minimum samples per leaf. Zero defaults to 2.
	MinSamplesLeaf int
	// FeatureSubset, when > 0, evaluates only this many randomly chosen
	// features per split (the random-forest decorrelation trick). Requires
	// Rng. Zero evaluates all features.
	FeatureSubset int
	// Rng drives feature subsampling; required when FeatureSubset > 0.
	Rng *rand.Rand
}

func (c TreeConfig) withDefaults() TreeConfig {
	if c.MaxDepth == 0 {
		c.MaxDepth = 12
	}
	if c.MinSamplesLeaf == 0 {
		c.MinSamplesLeaf = 2
	}
	return c
}

type treeNode struct {
	feature int
	thresh  float64
	left    *treeNode
	right   *treeNode
	value   float64 // leaf prediction
	leaf    bool
}

// RegressionTree is a fitted CART tree minimizing within-node variance.
type RegressionTree struct {
	root  *treeNode
	depth int
	nodes int
}

// TreeFit builds a regression tree on row-major samples x with targets y.
func TreeFit(x [][]float64, y []float64, cfg TreeConfig) *RegressionTree {
	cfg = cfg.withDefaults()
	t := &RegressionTree{}
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	t.root = t.build(x, y, idx, 0, cfg)
	return t
}

func (t *RegressionTree) build(x [][]float64, y []float64, idx []int, depth int, cfg TreeConfig) *treeNode {
	t.nodes++
	if depth > t.depth {
		t.depth = depth
	}
	sub := make([]float64, len(idx))
	for i, j := range idx {
		sub[i] = y[j]
	}
	mean := Mean(sub)
	if depth >= cfg.MaxDepth || len(idx) < 2*cfg.MinSamplesLeaf || Variance(sub) < 1e-12 {
		return &treeNode{leaf: true, value: mean}
	}

	p := len(x[0])
	features := make([]int, p)
	for i := range features {
		features[i] = i
	}
	if cfg.FeatureSubset > 0 && cfg.FeatureSubset < p && cfg.Rng != nil {
		cfg.Rng.Shuffle(p, func(i, j int) { features[i], features[j] = features[j], features[i] })
		features = features[:cfg.FeatureSubset]
	}

	bestFeat, bestThresh, bestScore := -1, 0.0, math.Inf(1)
	vals := make([]float64, 0, len(idx))
	for _, feat := range features {
		vals = vals[:0]
		for _, j := range idx {
			vals = append(vals, x[j][feat])
		}
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		// Candidate thresholds: midpoints of consecutive distinct values.
		for k := 0; k+1 < len(sorted); k++ {
			if sorted[k] == sorted[k+1] {
				continue
			}
			thresh := (sorted[k] + sorted[k+1]) / 2
			// Weighted variance of the two sides.
			var ln, rn int
			var lsum, lsq, rsum, rsq float64
			for _, j := range idx {
				v := y[j]
				if x[j][feat] <= thresh {
					ln++
					lsum += v
					lsq += v * v
				} else {
					rn++
					rsum += v
					rsq += v * v
				}
			}
			if ln < cfg.MinSamplesLeaf || rn < cfg.MinSamplesLeaf {
				continue
			}
			lvar := lsq - lsum*lsum/float64(ln)
			rvar := rsq - rsum*rsum/float64(rn)
			score := lvar + rvar
			if score < bestScore {
				bestFeat, bestThresh, bestScore = feat, thresh, score
			}
		}
	}
	if bestFeat < 0 {
		return &treeNode{leaf: true, value: mean}
	}

	var li, ri []int
	for _, j := range idx {
		if x[j][bestFeat] <= bestThresh {
			li = append(li, j)
		} else {
			ri = append(ri, j)
		}
	}
	return &treeNode{
		feature: bestFeat,
		thresh:  bestThresh,
		left:    t.build(x, y, li, depth+1, cfg),
		right:   t.build(x, y, ri, depth+1, cfg),
	}
}

// Predict evaluates the tree at q.
func (t *RegressionTree) Predict(q []float64) float64 {
	n := t.root
	for !n.leaf {
		if q[n.feature] <= n.thresh {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.value
}

// Depth returns the fitted tree's height.
func (t *RegressionTree) Depth() int { return t.depth }

// Nodes returns the total node count.
func (t *RegressionTree) Nodes() int { return t.nodes }

// ForestConfig parameterizes random-forest regression.
type ForestConfig struct {
	// Trees is the ensemble size. Zero defaults to 50.
	Trees int
	// Tree configures each member; FeatureSubset 0 defaults to ⌈√p⌉.
	Tree TreeConfig
}

// Forest is a fitted random-forest regressor, used both as a Fig. 11b
// baseline and inside the IRPA ensemble.
type Forest struct {
	trees []*RegressionTree
}

// ForestFit trains a bagged ensemble of decorrelated regression trees.
func ForestFit(x [][]float64, y []float64, cfg ForestConfig, rng *rand.Rand) *Forest {
	if cfg.Trees == 0 {
		cfg.Trees = 50
	}
	n := len(x)
	f := &Forest{}
	if n == 0 {
		return f
	}
	p := len(x[0])
	tc := cfg.Tree
	if tc.FeatureSubset == 0 {
		tc.FeatureSubset = int(math.Ceil(math.Sqrt(float64(p))))
	}
	for t := 0; t < cfg.Trees; t++ {
		// Bootstrap sample.
		bx := make([][]float64, n)
		by := make([]float64, n)
		for i := 0; i < n; i++ {
			j := rng.Intn(n)
			bx[i] = x[j]
			by[i] = y[j]
		}
		tcc := tc
		tcc.Rng = rng
		f.trees = append(f.trees, TreeFit(bx, by, tcc))
	}
	return f
}

// Predict averages the ensemble at q.
func (f *Forest) Predict(q []float64) float64 {
	if len(f.trees) == 0 {
		return 0
	}
	s := 0.0
	for _, t := range f.trees {
		s += t.Predict(q)
	}
	return s / float64(len(f.trees))
}

// Size returns the number of trees in the ensemble.
func (f *Forest) Size() int { return len(f.trees) }
