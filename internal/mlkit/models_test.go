package mlkit

import (
	"math"
	"math/rand"
	"testing"
)

// --- K-means ---------------------------------------------------------------

func blobs(rng *rand.Rand, centers [][]float64, perCluster int, spread float64) ([][]float64, []int) {
	var xs [][]float64
	var labels []int
	for c, cen := range centers {
		for i := 0; i < perCluster; i++ {
			row := make([]float64, len(cen))
			for j, v := range cen {
				row[j] = v + rng.NormFloat64()*spread
			}
			xs = append(xs, row)
			labels = append(labels, c)
		}
	}
	return xs, labels
}

func TestKMeansSeparatesBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	centers := [][]float64{{0, 0}, {10, 10}, {-10, 10}}
	xs, labels := blobs(rng, centers, 50, 0.5)
	km := KMeansFit(xs, 3, 0, rng)
	if km.K() != 3 {
		t.Fatalf("K = %d", km.K())
	}
	// Every pair from the same blob must share a cluster.
	assign := km.Assign(xs)
	for i := 1; i < len(xs); i++ {
		if labels[i] == labels[i-1] && assign[i] != assign[i-1] {
			t.Fatalf("samples %d,%d from same blob split across clusters", i-1, i)
		}
	}
	for _, sz := range km.Sizes {
		if sz != 50 {
			t.Errorf("cluster size %d, want 50", sz)
		}
	}
}

func TestKMeansMoreClustersThanSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := [][]float64{{1}, {2}}
	km := KMeansFit(xs, 10, 0, rng)
	if km.K() != 2 {
		t.Errorf("K = %d, want clamp to 2", km.K())
	}
}

func TestKMeansEmpty(t *testing.T) {
	km := KMeansFit(nil, 3, 0, rand.New(rand.NewSource(1)))
	if km.K() != 0 {
		t.Error("empty fit must produce no centroids")
	}
}

func TestKMeansInertiaDecreasesWithK(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	xs, _ := blobs(rng, [][]float64{{0, 0}, {8, 8}, {0, 8}, {8, 0}}, 40, 1.0)
	i2 := KMeansFit(xs, 2, 0, rng).Inertia
	i4 := KMeansFit(xs, 4, 0, rng).Inertia
	if i4 >= i2 {
		t.Errorf("inertia(4)=%v >= inertia(2)=%v", i4, i2)
	}
}

func TestChooseKElbowFindsBlobCount(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs, _ := blobs(rng, [][]float64{{0, 0}, {20, 0}, {0, 20}, {20, 20}}, 40, 0.5)
	k := ChooseKElbow(xs, 1, 10, 50, rng)
	if k < 3 || k > 5 {
		t.Errorf("elbow K = %d, want ~4", k)
	}
}

// --- SVR --------------------------------------------------------------------

func TestSVRFitsLinearFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 120; i++ {
		x := rng.Float64()*4 - 2
		xs = append(xs, []float64{x})
		ys = append(ys, 3*x+1)
	}
	m := SVRFit(xs, ys, SVRConfig{C: 100, Epsilon: 0.05})
	for _, q := range []float64{-1.5, 0, 1.5} {
		got := m.Predict([]float64{q})
		want := 3*q + 1
		if math.Abs(got-want) > 0.3 {
			t.Errorf("f(%v) = %v, want %v", q, got, want)
		}
	}
}

func TestSVRFitsNonlinearWithRBF(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 200; i++ {
		x := rng.Float64()*6 - 3
		xs = append(xs, []float64{x})
		ys = append(ys, math.Sin(x))
	}
	m := SVRFit(xs, ys, SVRConfig{C: 50, Epsilon: 0.02, Kernel: RBFKernel{Gamma: 1}})
	errSum := 0.0
	n := 0
	for q := -2.5; q <= 2.5; q += 0.25 {
		errSum += math.Abs(m.Predict([]float64{q}) - math.Sin(q))
		n++
	}
	if mae := errSum / float64(n); mae > 0.15 {
		t.Errorf("MAE = %v on sin(x)", mae)
	}
}

func TestSVREpsilonSparsity(t *testing.T) {
	// With a wide tube and data inside it, most coefficients stay zero.
	rng := rand.New(rand.NewSource(6))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 100; i++ {
		x := rng.Float64()
		xs = append(xs, []float64{x})
		ys = append(ys, 5.0+rng.NormFloat64()*0.01)
	}
	wide := SVRFit(xs, ys, SVRConfig{C: 10, Epsilon: 1.0})
	tight := SVRFit(xs, ys, SVRConfig{C: 10, Epsilon: 0.001})
	if wide.SupportVectors() >= tight.SupportVectors() {
		t.Errorf("wide-tube SVs (%d) should be fewer than tight-tube SVs (%d)",
			wide.SupportVectors(), tight.SupportVectors())
	}
}

func TestSVREmptyFit(t *testing.T) {
	m := SVRFit(nil, nil, SVRConfig{})
	if m.Predict([]float64{1}) != 0 {
		t.Error("empty SVR must predict 0")
	}
}

func TestSVRConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 50; i++ {
		x := rng.Float64()
		xs = append(xs, []float64{x})
		ys = append(ys, 2*x)
	}
	m := SVRFit(xs, ys, SVRConfig{MaxIter: 500})
	if m.Iterations() >= 500 {
		t.Errorf("SVR did not converge in %d sweeps", m.Iterations())
	}
}

// --- Regression tree / forest ------------------------------------------------

func stepData(rng *rand.Rand, n int) ([][]float64, []float64) {
	var xs [][]float64
	var ys []float64
	for i := 0; i < n; i++ {
		x := rng.Float64() * 10
		y := 1.0
		if x > 5 {
			y = 9.0
		}
		xs = append(xs, []float64{x})
		ys = append(ys, y)
	}
	return xs, ys
}

func TestTreeLearnsStepFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	xs, ys := stepData(rng, 200)
	tr := TreeFit(xs, ys, TreeConfig{})
	if got := tr.Predict([]float64{2}); math.Abs(got-1) > 0.01 {
		t.Errorf("f(2) = %v, want 1", got)
	}
	if got := tr.Predict([]float64{8}); math.Abs(got-9) > 0.01 {
		t.Errorf("f(8) = %v, want 9", got)
	}
	if tr.Depth() == 0 || tr.Nodes() < 3 {
		t.Errorf("degenerate tree: depth=%d nodes=%d", tr.Depth(), tr.Nodes())
	}
}

func TestTreeRespectsMaxDepth(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 500; i++ {
		x := rng.Float64()
		xs = append(xs, []float64{x})
		ys = append(ys, rng.Float64())
	}
	tr := TreeFit(xs, ys, TreeConfig{MaxDepth: 3})
	if tr.Depth() > 3 {
		t.Errorf("depth %d > max 3", tr.Depth())
	}
}

func TestTreeConstantTargetIsLeaf(t *testing.T) {
	xs := [][]float64{{1}, {2}, {3}, {4}}
	ys := []float64{5, 5, 5, 5}
	tr := TreeFit(xs, ys, TreeConfig{})
	if tr.Nodes() != 1 {
		t.Errorf("constant target built %d nodes", tr.Nodes())
	}
	if tr.Predict([]float64{10}) != 5 {
		t.Error("wrong constant prediction")
	}
}

func TestForestBeatsSingleTreeOnNoisyData(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	gen := func(n int) ([][]float64, []float64) {
		var xs [][]float64
		var ys []float64
		for i := 0; i < n; i++ {
			a, b := rng.Float64()*4, rng.Float64()*4
			xs = append(xs, []float64{a, b})
			ys = append(ys, a*2+b+rng.NormFloat64()*0.8)
		}
		return xs, ys
	}
	trainX, trainY := gen(300)
	testX, testY := gen(100)
	tree := TreeFit(trainX, trainY, TreeConfig{})
	forest := ForestFit(trainX, trainY, ForestConfig{Trees: 40}, rng)
	mse := func(pred func([]float64) float64) float64 {
		s := 0.0
		for i, q := range testX {
			d := pred(q) - testY[i]
			s += d * d
		}
		return s / float64(len(testX))
	}
	if mse(forest.Predict) >= mse(tree.Predict) {
		t.Errorf("forest MSE %v >= tree MSE %v", mse(forest.Predict), mse(tree.Predict))
	}
	if forest.Size() != 40 {
		t.Errorf("forest size %d", forest.Size())
	}
}

func TestForestEmpty(t *testing.T) {
	f := ForestFit(nil, nil, ForestConfig{}, rand.New(rand.NewSource(1)))
	if f.Predict([]float64{1}) != 0 {
		t.Error("empty forest must predict 0")
	}
}

// --- Bayesian ridge -----------------------------------------------------------

func TestBayesianRidgeRecoversWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 300; i++ {
		a, b := rng.NormFloat64(), rng.NormFloat64()
		xs = append(xs, []float64{a, b})
		ys = append(ys, 2*a-3*b+0.5+rng.NormFloat64()*0.1)
	}
	m := BayesianRidgeFit(xs, ys, 0)
	if math.Abs(m.Weights[0]-2) > 0.1 || math.Abs(m.Weights[1]+3) > 0.1 {
		t.Errorf("weights = %v, want ~[2 -3 0.5]", m.Weights)
	}
	if math.Abs(m.Weights[2]-0.5) > 0.1 {
		t.Errorf("intercept = %v", m.Weights[2])
	}
	if m.Predict([]float64{1, 1}) == 0 {
		t.Error("prediction is zero")
	}
	// Noise precision should be around 1/0.01 = 100.
	if m.Alpha < 20 || m.Alpha > 500 {
		t.Errorf("alpha = %v, want O(100)", m.Alpha)
	}
}

func TestBayesianRidgeShrinksOnPureNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 200; i++ {
		xs = append(xs, []float64{rng.NormFloat64()})
		ys = append(ys, rng.NormFloat64())
	}
	m := BayesianRidgeFit(xs, ys, 0)
	if math.Abs(m.Weights[0]) > 0.2 {
		t.Errorf("weight on noise feature = %v, want ~0", m.Weights[0])
	}
}

func TestBayesianRidgeEmpty(t *testing.T) {
	m := BayesianRidgeFit(nil, nil, 0)
	if m.Predict([]float64{1}) != 0 {
		t.Error("empty model must predict 0")
	}
}

// --- Tobit --------------------------------------------------------------------

func TestTobitCorrectsCensorBias(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	var xs [][]float64
	var ys []float64
	var cens []bool
	var xsOLS [][]float64
	var ysOLS []float64
	// True model: y* = 4x + noise; censored at 3 (many high values cut).
	for i := 0; i < 400; i++ {
		x := rng.Float64()
		yStar := 4*x + rng.NormFloat64()*0.3
		y := yStar
		c := false
		if y > 3 {
			y = 3
			c = true
		}
		xs = append(xs, []float64{x})
		ys = append(ys, y)
		cens = append(cens, c)
		xsOLS = append(xsOLS, []float64{x})
		ysOLS = append(ysOLS, y)
	}
	tob := TobitFit(xs, ys, cens, TobitConfig{})
	ols := BayesianRidgeFit(xsOLS, ysOLS, 0) // naive fit on censored data
	// At x = 0.9 the true mean is 3.6, beyond the censor point. Tobit must
	// get closer than the naive fit.
	truth := 4 * 0.9
	tErr := math.Abs(tob.Predict([]float64{0.9}) - truth)
	oErr := math.Abs(ols.Predict([]float64{0.9}) - truth)
	if tErr >= oErr {
		t.Errorf("Tobit error %v >= naive error %v", tErr, oErr)
	}
	if tErr > 0.5 {
		t.Errorf("Tobit prediction error %v too large", tErr)
	}
}

func TestTobitUncensoredMatchesLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	var xs [][]float64
	var ys []float64
	var cens []bool
	for i := 0; i < 300; i++ {
		x := rng.NormFloat64()
		xs = append(xs, []float64{x})
		ys = append(ys, 2*x+1+rng.NormFloat64()*0.1)
		cens = append(cens, false)
	}
	m := TobitFit(xs, ys, cens, TobitConfig{})
	for _, q := range []float64{-1, 0, 1} {
		want := 2*q + 1
		if got := m.Predict([]float64{q}); math.Abs(got-want) > 0.2 {
			t.Errorf("f(%v) = %v, want %v", q, got, want)
		}
	}
}

func TestTobitEmpty(t *testing.T) {
	m := TobitFit(nil, nil, nil, TobitConfig{})
	if m.Predict([]float64{1}) != 0 {
		t.Error("empty Tobit must predict 0")
	}
}

// --- Benchmarks ----------------------------------------------------------------

func BenchmarkKMeans700Jobs(b *testing.B) {
	// The estimation framework clusters a 700-job interest window into
	// K=15 clusters; this is the recurring training cost.
	rng := rand.New(rand.NewSource(1))
	xs := make([][]float64, 700)
	for i := range xs {
		xs[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		KMeansFit(xs, 15, 50, rng)
	}
}

func BenchmarkSVRFitCluster(b *testing.B) {
	// ~47 jobs per cluster (700/15) with 5 features.
	rng := rand.New(rand.NewSource(2))
	xs := make([][]float64, 47)
	ys := make([]float64, 47)
	for i := range xs {
		xs[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
		ys[i] = rng.Float64() * 10
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SVRFit(xs, ys, SVRConfig{})
	}
}
