package mlkit

import (
	"math"
	"math/rand"
	"testing"
)

func TestCrossValidateRanksModels(t *testing.T) {
	// Quadratic data: a flexible RBF SVR must cross-validate better than a
	// constant-mean predictor.
	rng := rand.New(rand.NewSource(1))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 150; i++ {
		x := rng.Float64()*4 - 2
		xs = append(xs, []float64{x})
		ys = append(ys, x*x+rng.NormFloat64()*0.05)
	}
	svrErr := CrossValidate(xs, ys, 3, func(tx [][]float64, ty []float64) Regressor {
		return SVRFit(tx, ty, SVRConfig{C: 50, Epsilon: 0.02, Kernel: RBFKernel{Gamma: 1}})
	}, rng)
	meanErr := CrossValidate(xs, ys, 3, func(tx [][]float64, ty []float64) Regressor {
		return constModel(Mean(ty))
	}, rng)
	if svrErr >= meanErr {
		t.Fatalf("SVR CV error %v >= constant model %v", svrErr, meanErr)
	}
	if svrErr > 0.2 {
		t.Errorf("SVR CV error %v too high on a clean quadratic", svrErr)
	}
}

type constModel float64

func (c constModel) Predict([]float64) float64 { return float64(c) }

func TestCrossValidateEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if CrossValidate(nil, nil, 3, nil, rng) != 0 {
		t.Error("empty CV must be 0")
	}
	// One sample: k clamps, folds with empty train skipped.
	err := CrossValidate([][]float64{{1}}, []float64{5}, 5, func(tx [][]float64, ty []float64) Regressor {
		return constModel(Mean(ty))
	}, rng)
	if math.IsNaN(err) {
		t.Error("degenerate CV produced NaN")
	}
}

func TestGridSearchFindsFlexibleKernel(t *testing.T) {
	// Data with sharp local structure needs the high-gamma candidate; grid
	// search must not pick the flattest kernel.
	rng := rand.New(rand.NewSource(3))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 120; i++ {
		x := rng.Float64()*10 - 5
		y := 0.0
		if x > 0 {
			y = 4
		}
		xs = append(xs, []float64{x})
		ys = append(ys, y+rng.NormFloat64()*0.05)
	}
	cfg, cvErr := GridSearchSVR(xs, ys, SVRGrid{
		Cs:     []float64{10},
		Gammas: []float64{0.001, 2.0},
	}, rng)
	rbf, ok := cfg.Kernel.(RBFKernel)
	if !ok {
		t.Fatal("grid search returned a non-RBF kernel")
	}
	if rbf.Gamma != 2.0 {
		t.Errorf("picked gamma %v; the step function needs the sharp kernel", rbf.Gamma)
	}
	if cvErr > 0.5 {
		t.Errorf("best CV error = %v", cvErr)
	}
}

func TestGridSearchDefaults(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 40; i++ {
		x := rng.Float64()
		xs = append(xs, []float64{x})
		ys = append(ys, 2*x)
	}
	cfg, err := GridSearchSVR(xs, ys, SVRGrid{}, rng)
	if cfg.C == 0 || cfg.Kernel == nil {
		t.Fatal("defaults not applied")
	}
	if math.IsInf(err, 1) {
		t.Fatal("no candidate evaluated")
	}
}
