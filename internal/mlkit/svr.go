package mlkit

import (
	"math"
)

// Kernel maps two feature vectors to a similarity value.
type Kernel interface {
	Eval(a, b []float64) float64
}

// RBFKernel is exp(-gamma · ‖a−b‖²).
type RBFKernel struct{ Gamma float64 }

// Eval implements Kernel.
func (k RBFKernel) Eval(a, b []float64) float64 {
	return math.Exp(-k.Gamma * SqDist(a, b))
}

// LinearKernel is the plain dot product.
type LinearKernel struct{}

// Eval implements Kernel.
func (LinearKernel) Eval(a, b []float64) float64 { return Dot(a, b) }

// SVRConfig parameterizes ε-insensitive support-vector regression.
type SVRConfig struct {
	// C is the box constraint (regularization inverse). Zero defaults to 10.
	C float64
	// Epsilon is the insensitive-tube half-width. Zero defaults to 0.1.
	Epsilon float64
	// Kernel defaults to RBF with gamma = 1/p.
	Kernel Kernel
	// MaxIter bounds coordinate-descent sweeps. Zero defaults to 200.
	MaxIter int
	// Tol is the convergence threshold on the largest coefficient change
	// per sweep. Zero defaults to 1e-4.
	Tol float64
}

func (c SVRConfig) withDefaults(p int) SVRConfig {
	if c.C == 0 {
		c.C = 10
	}
	if c.Epsilon == 0 {
		c.Epsilon = 0.1
	}
	if c.Kernel == nil {
		g := 1.0
		if p > 0 {
			g = 1.0 / float64(p)
		}
		c.Kernel = RBFKernel{Gamma: g}
	}
	if c.MaxIter == 0 {
		c.MaxIter = 200
	}
	if c.Tol == 0 {
		c.Tol = 1e-4
	}
	return c
}

// SVR is a fitted ε-insensitive support-vector regression model — the
// per-cluster regressor of the estimation framework (Section V-A:
// "a support vector machine (SVM) model for regression (SVR)").
//
// The dual is solved by coordinate descent on β = α − α*, with the bias
// folded into the kernel (K' = K + 1), which removes the equality
// constraint Σβ = 0 and admits a closed-form per-coordinate update with
// soft thresholding at ε.
type SVR struct {
	cfg  SVRConfig
	x    [][]float64
	beta []float64
	// support indexes the non-zero coefficients.
	support []int
	iters   int
}

// SVRFit trains an SVR on row-major samples x with targets y.
func SVRFit(x [][]float64, y []float64, cfg SVRConfig) *SVR {
	n := len(x)
	if n == 0 {
		return &SVR{cfg: cfg.withDefaults(0)}
	}
	if len(y) != n {
		panic("mlkit: SVRFit requires len(x) == len(y)")
	}
	cfg = cfg.withDefaults(len(x[0]))
	m := &SVR{cfg: cfg, x: x, beta: make([]float64, n)}

	// Precompute the augmented kernel matrix K' = K + 1 (bias folding).
	km := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := cfg.Kernel.Eval(x[i], x[j]) + 1
			km[i*n+j] = v
			km[j*n+i] = v
		}
	}

	// f[i] = Σ_j β_j K'_ij, maintained incrementally.
	f := make([]float64, n)
	for sweep := 0; sweep < cfg.MaxIter; sweep++ {
		maxDelta := 0.0
		for i := 0; i < n; i++ {
			kii := km[i*n+i]
			if kii <= 0 {
				continue
			}
			// Residual excluding i's own contribution.
			r := y[i] - (f[i] - m.beta[i]*kii)
			// Soft-threshold at epsilon, then box-clip.
			var nb float64
			switch {
			case r > cfg.Epsilon:
				nb = (r - cfg.Epsilon) / kii
			case r < -cfg.Epsilon:
				nb = (r + cfg.Epsilon) / kii
			default:
				nb = 0
			}
			if nb > cfg.C {
				nb = cfg.C
			} else if nb < -cfg.C {
				nb = -cfg.C
			}
			d := nb - m.beta[i]
			if d == 0 {
				continue
			}
			m.beta[i] = nb
			for j := 0; j < n; j++ {
				f[j] += d * km[i*n+j]
			}
			if ad := math.Abs(d); ad > maxDelta {
				maxDelta = ad
			}
		}
		m.iters = sweep + 1
		if maxDelta < cfg.Tol {
			break
		}
	}

	for i, b := range m.beta {
		if b != 0 {
			m.support = append(m.support, i)
		}
	}
	return m
}

// Predict evaluates the fitted model at q.
func (m *SVR) Predict(q []float64) float64 {
	s := 0.0
	for _, i := range m.support {
		s += m.beta[i] * (m.cfg.Kernel.Eval(m.x[i], q) + 1)
	}
	return s
}

// SupportVectors returns the number of samples with non-zero dual
// coefficients.
func (m *SVR) SupportVectors() int { return len(m.support) }

// Iterations returns the number of coordinate-descent sweeps performed.
func (m *SVR) Iterations() int { return m.iters }
