package mlkit

import (
	"math"
	"math/rand"
)

// Regressor abstracts a fitted model for cross-validation.
type Regressor interface {
	Predict(x []float64) float64
}

// FitFunc trains a regressor on a fold.
type FitFunc func(xs [][]float64, ys []float64) Regressor

// CrossValidate estimates a model's mean absolute error by k-fold
// cross-validation with a deterministic shuffle. Folds smaller than one
// sample are skipped; k is clamped to len(xs).
func CrossValidate(xs [][]float64, ys []float64, k int, fit FitFunc, rng *rand.Rand) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	if k > n {
		k = n
	}
	if k < 2 {
		k = 2
	}
	perm := rng.Perm(n)

	totalErr, count := 0.0, 0
	for fold := 0; fold < k; fold++ {
		var trX, teX [][]float64
		var trY, teY []float64
		for i, p := range perm {
			if i%k == fold {
				teX = append(teX, xs[p])
				teY = append(teY, ys[p])
			} else {
				trX = append(trX, xs[p])
				trY = append(trY, ys[p])
			}
		}
		if len(teX) == 0 || len(trX) == 0 {
			continue
		}
		m := fit(trX, trY)
		for i, x := range teX {
			totalErr += math.Abs(m.Predict(x) - teY[i])
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return totalErr / float64(count)
}

// SVRGrid is the hyperparameter grid for GridSearchSVR.
type SVRGrid struct {
	Cs      []float64
	Gammas  []float64
	Epsilon float64
	// Folds for cross-validation (default 3).
	Folds int
	// MaxIter per candidate fit (default 400 — tuning fits are many).
	MaxIter int
}

func (g SVRGrid) withDefaults() SVRGrid {
	if len(g.Cs) == 0 {
		g.Cs = []float64{1, 10, 50}
	}
	if len(g.Gammas) == 0 {
		g.Gammas = []float64{0.05, 0.25, 1.0}
	}
	if g.Epsilon == 0 {
		g.Epsilon = 0.02
	}
	if g.Folds == 0 {
		g.Folds = 3
	}
	if g.MaxIter == 0 {
		g.MaxIter = 400
	}
	return g
}

// GridSearchSVR cross-validates every (C, gamma) pair and returns the
// configuration with the lowest mean absolute error plus that error.
// Deterministic for a given rng.
func GridSearchSVR(xs [][]float64, ys []float64, grid SVRGrid, rng *rand.Rand) (SVRConfig, float64) {
	grid = grid.withDefaults()
	best := SVRConfig{C: grid.Cs[0], Epsilon: grid.Epsilon, Kernel: RBFKernel{Gamma: grid.Gammas[0]}, MaxIter: grid.MaxIter}
	bestErr := math.Inf(1)
	for _, c := range grid.Cs {
		for _, gamma := range grid.Gammas {
			cfg := SVRConfig{C: c, Epsilon: grid.Epsilon, Kernel: RBFKernel{Gamma: gamma}, MaxIter: grid.MaxIter}
			err := CrossValidate(xs, ys, grid.Folds, func(tx [][]float64, ty []float64) Regressor {
				return SVRFit(tx, ty, cfg)
			}, rng)
			if err < bestErr {
				bestErr = err
				best = cfg
			}
		}
	}
	return best, bestErr
}
