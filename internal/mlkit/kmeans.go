package mlkit

import (
	"math"
	"math/rand"
)

// KMeans is a fitted K-means++ clustering model (Arthur & Vassilvitskii,
// SODA'07), the clustering stage of the estimation model generator
// (Section V-A).
type KMeans struct {
	Centroids [][]float64
	// Sizes[i] is the number of training samples assigned to cluster i.
	Sizes []int
	// Inertia is the total within-cluster sum of squared distances.
	Inertia float64
}

// KMeansFit clusters samples into k groups using K-means++ seeding and
// Lloyd iterations (at most maxIter; 0 means 100). Fewer samples than k
// yields one cluster per distinct sample position.
func KMeansFit(samples [][]float64, k int, maxIter int, rng *rand.Rand) *KMeans {
	if len(samples) == 0 || k <= 0 {
		return &KMeans{}
	}
	if k > len(samples) {
		k = len(samples)
	}
	if maxIter <= 0 {
		maxIter = 100
	}

	centroids := seedPlusPlus(samples, k, rng)
	assign := make([]int, len(samples))
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for i, s := range samples {
			best, bestD := 0, math.Inf(1)
			for c, cen := range centroids {
				if d := SqDist(s, cen); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		// Recompute centroids.
		dim := len(samples[0])
		sums := make([][]float64, k)
		counts := make([]int, k)
		for c := range sums {
			sums[c] = make([]float64, dim)
		}
		for i, s := range samples {
			c := assign[i]
			counts[c]++
			for j, v := range s {
				sums[c][j] += v
			}
		}
		for c := range centroids {
			if counts[c] == 0 {
				// Empty cluster: reseed from the sample farthest from its
				// centroid to keep k clusters alive.
				far, farD := 0, -1.0
				for i, s := range samples {
					if d := SqDist(s, centroids[assign[i]]); d > farD {
						far, farD = i, d
					}
				}
				centroids[c] = append([]float64(nil), samples[far]...)
				continue
			}
			for j := range sums[c] {
				sums[c][j] /= float64(counts[c])
			}
			centroids[c] = sums[c]
		}
	}

	km := &KMeans{Centroids: centroids, Sizes: make([]int, k)}
	for i, s := range samples {
		c := km.Nearest(s)
		assign[i] = c
		km.Sizes[c]++
		km.Inertia += SqDist(s, centroids[c])
	}
	return km
}

// seedPlusPlus picks k initial centroids with D² weighting.
func seedPlusPlus(samples [][]float64, k int, rng *rand.Rand) [][]float64 {
	centroids := make([][]float64, 0, k)
	first := samples[rng.Intn(len(samples))]
	centroids = append(centroids, append([]float64(nil), first...))

	d2 := make([]float64, len(samples))
	for len(centroids) < k {
		total := 0.0
		for i, s := range samples {
			best := math.Inf(1)
			for _, c := range centroids {
				if d := SqDist(s, c); d < best {
					best = d
				}
			}
			d2[i] = best
			total += best
		}
		if total == 0 {
			// All remaining samples coincide with centroids; duplicate one.
			centroids = append(centroids, append([]float64(nil), samples[rng.Intn(len(samples))]...))
			continue
		}
		r := rng.Float64() * total
		idx := 0
		for i, d := range d2 {
			r -= d
			if r <= 0 {
				idx = i
				break
			}
		}
		centroids = append(centroids, append([]float64(nil), samples[idx]...))
	}
	return centroids
}

// K returns the number of clusters.
func (k *KMeans) K() int { return len(k.Centroids) }

// Nearest returns the index of the closest centroid to x.
func (k *KMeans) Nearest(x []float64) int {
	best, bestD := 0, math.Inf(1)
	for c, cen := range k.Centroids {
		if d := SqDist(x, cen); d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

// Assign returns the cluster index of every sample.
func (k *KMeans) Assign(samples [][]float64) []int {
	out := make([]int, len(samples))
	for i, s := range samples {
		out[i] = k.Nearest(s)
	}
	return out
}

// ChooseKElbow runs K-means for k in [kMin, kMax] and picks the elbow of
// the inertia curve — the k with the maximum distance from the line
// connecting (kMin, inertia(kMin)) and (kMax, inertia(kMax)) — the
// "classical elbow method" the paper uses to arrive at K=15.
func ChooseKElbow(samples [][]float64, kMin, kMax, maxIter int, rng *rand.Rand) int {
	if kMin < 1 {
		kMin = 1
	}
	if kMax > len(samples) {
		kMax = len(samples)
	}
	if kMax <= kMin {
		return kMin
	}
	inertias := make([]float64, kMax-kMin+1)
	for k := kMin; k <= kMax; k++ {
		inertias[k-kMin] = KMeansFit(samples, k, maxIter, rng).Inertia
	}
	// Distance from the chord.
	x1, y1 := float64(kMin), inertias[0]
	x2, y2 := float64(kMax), inertias[len(inertias)-1]
	dx, dy := x2-x1, y2-y1
	norm := math.Hypot(dx, dy)
	if norm == 0 {
		return kMin
	}
	bestK, bestD := kMin, -1.0
	for k := kMin; k <= kMax; k++ {
		px, py := float64(k), inertias[k-kMin]
		d := math.Abs(dy*px-dx*py+x2*y1-y2*x1) / norm
		if d > bestD {
			bestK, bestD = k, d
		}
	}
	return bestK
}
