package mlkit

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSolveKnownSystem(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 2)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 3)
	x, err := Solve(a, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], 1, 1e-9) || !almostEq(x[1], 3, 1e-9) {
		t.Fatalf("x = %v, want [1 3]", x)
	}
}

func TestSolveNeedsPivoting(t *testing.T) {
	// Leading zero forces a row swap.
	a := NewMatrix(2, 2)
	a.Set(0, 0, 0)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 0)
	x, err := Solve(a, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], 3, 1e-9) || !almostEq(x[1], 2, 1e-9) {
		t.Fatalf("x = %v, want [3 2]", x)
	}
}

func TestSolveSingular(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 4)
	if _, err := Solve(a, []float64{1, 2}); err != ErrSingular {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestSolveDoesNotDestroyInputs(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 4)
	a.Set(1, 1, 4)
	b := []float64{8, 8}
	Solve(a, b)
	if a.At(0, 0) != 4 || b[0] != 8 {
		t.Error("Solve mutated its inputs")
	}
}

func TestInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 5
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, rng.NormFloat64())
		}
		a.Add(i, i, float64(n)) // diagonally dominant => invertible
	}
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	// A · A⁻¹ ≈ I.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for k := 0; k < n; k++ {
				s += a.At(i, k) * inv.At(k, j)
			}
			want := 0.0
			if i == j {
				want = 1
			}
			if !almostEq(s, want, 1e-8) {
				t.Fatalf("(A·A⁻¹)[%d][%d] = %v", i, j, s)
			}
		}
	}
}

func TestGramAndMulTVec(t *testing.T) {
	x := NewMatrix(3, 2)
	vals := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	for i, r := range vals {
		for j, v := range r {
			x.Set(i, j, v)
		}
	}
	g := Gram(x)
	// XᵀX = [[35, 44], [44, 56]].
	if g.At(0, 0) != 35 || g.At(0, 1) != 44 || g.At(1, 1) != 56 {
		t.Fatalf("Gram = %v", g.Data)
	}
	v := MulTVec(x, []float64{1, 1, 1})
	if v[0] != 9 || v[1] != 12 {
		t.Fatalf("MulTVec = %v", v)
	}
}

func TestMulVecPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on dimension mismatch")
		}
	}()
	NewMatrix(2, 2).MulVec([]float64{1})
}

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(xs) != 5 {
		t.Errorf("Mean = %v", Mean(xs))
	}
	if Variance(xs) != 4 {
		t.Errorf("Variance = %v", Variance(xs))
	}
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Error("empty input must give 0")
	}
}

func TestDotSqDist(t *testing.T) {
	if Dot([]float64{1, 2}, []float64{3, 4}) != 11 {
		t.Error("Dot wrong")
	}
	if SqDist([]float64{0, 0}, []float64{3, 4}) != 25 {
		t.Error("SqDist wrong")
	}
}

func TestStandardScaler(t *testing.T) {
	samples := [][]float64{{1, 10, 5}, {3, 10, 7}, {5, 10, 9}}
	s := FitScaler(samples)
	out := s.TransformAll(samples)
	// Column 0: mean 3, each standardized value symmetric around 0.
	if !almostEq(out[0][0], -out[2][0], 1e-12) || !almostEq(out[1][0], 0, 1e-12) {
		t.Errorf("column 0 standardization wrong: %v", out)
	}
	// Constant column maps to zero, not NaN.
	for _, r := range out {
		if r[1] != 0 {
			t.Errorf("constant column produced %v", r[1])
		}
		if math.IsNaN(r[0]) || math.IsNaN(r[2]) {
			t.Error("NaN in scaled output")
		}
	}
}

func TestScalerEmptyFit(t *testing.T) {
	s := FitScaler(nil)
	got := s.Transform([]float64{1, 2})
	if got[0] != 1 || got[1] != 2 {
		t.Error("empty-fit scaler must pass values through")
	}
}

// Property: Solve(A, A·x) ≈ x for well-conditioned A.
func TestPropertySolveRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
			a.Add(i, i, float64(2*n))
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		b := a.MulVec(x)
		got, err := Solve(a, b)
		if err != nil {
			return false
		}
		for i := range x {
			if !almostEq(got[i], x[i], 1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
