// Package mlkit provides the from-scratch machine-learning primitives the
// runtime-estimation framework (Section V) and its baselines (Fig. 11b)
// are built on: K-means++ clustering with elbow-method model selection,
// ε-insensitive support-vector regression, CART regression trees and
// random forests, Bayesian ridge regression, and Tobit (censored)
// regression. Everything is stdlib-only and deterministic given a seeded
// *rand.Rand.
package mlkit

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a linear system has no unique solution.
var ErrSingular = errors.New("mlkit: singular matrix")

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add increments element (i, j).
func (m *Matrix) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// MulVec returns m · v.
func (m *Matrix) MulVec(v []float64) []float64 {
	if len(v) != m.Cols {
		panic(fmt.Sprintf("mlkit: MulVec dimension mismatch %d vs %d", len(v), m.Cols))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		s := 0.0
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, x := range v {
			s += row[j] * x
		}
		out[i] = s
	}
	return out
}

// Gram returns XᵀX for a row-major design matrix X.
func Gram(x *Matrix) *Matrix {
	g := NewMatrix(x.Cols, x.Cols)
	for i := 0; i < x.Rows; i++ {
		row := x.Data[i*x.Cols : (i+1)*x.Cols]
		for a := 0; a < x.Cols; a++ {
			if row[a] == 0 {
				continue
			}
			for b := 0; b < x.Cols; b++ {
				g.Data[a*x.Cols+b] += row[a] * row[b]
			}
		}
	}
	return g
}

// MulTVec returns Xᵀ · v for a row-major design matrix X.
func MulTVec(x *Matrix, v []float64) []float64 {
	if len(v) != x.Rows {
		panic("mlkit: MulTVec dimension mismatch")
	}
	out := make([]float64, x.Cols)
	for i := 0; i < x.Rows; i++ {
		row := x.Data[i*x.Cols : (i+1)*x.Cols]
		for j := range out {
			out[j] += row[j] * v[i]
		}
	}
	return out
}

// Solve solves A·x = b by Gaussian elimination with partial pivoting,
// destroying neither input. A must be square.
func Solve(a *Matrix, b []float64) ([]float64, error) {
	n := a.Rows
	if a.Cols != n || len(b) != n {
		panic("mlkit: Solve requires square A and matching b")
	}
	// Working copies.
	m := make([]float64, len(a.Data))
	copy(m, a.Data)
	x := make([]float64, n)
	copy(x, b)

	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		best := math.Abs(m[col*n+col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(m[r*n+col]); v > best {
				best, pivot = v, r
			}
		}
		if best < 1e-12 {
			return nil, ErrSingular
		}
		if pivot != col {
			for j := 0; j < n; j++ {
				m[col*n+j], m[pivot*n+j] = m[pivot*n+j], m[col*n+j]
			}
			x[col], x[pivot] = x[pivot], x[col]
		}
		inv := 1.0 / m[col*n+col]
		for r := col + 1; r < n; r++ {
			f := m[r*n+col] * inv
			if f == 0 {
				continue
			}
			for j := col; j < n; j++ {
				m[r*n+j] -= f * m[col*n+j]
			}
			x[r] -= f * x[col]
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= m[i*n+j] * x[j]
		}
		x[i] = s / m[i*n+i]
	}
	return x, nil
}

// Inverse returns A⁻¹ via column-wise solves. Intended for the small
// (p ≤ ~16) systems in Bayesian ridge; not for large matrices.
func Inverse(a *Matrix) (*Matrix, error) {
	n := a.Rows
	inv := NewMatrix(n, n)
	e := make([]float64, n)
	for c := 0; c < n; c++ {
		for i := range e {
			e[i] = 0
		}
		e[c] = 1
		col, err := Solve(a, e)
		if err != nil {
			return nil, err
		}
		for r := 0; r < n; r++ {
			inv.Set(r, c, col[r])
		}
	}
	return inv, nil
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("mlkit: Dot length mismatch")
	}
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// SqDist returns the squared Euclidean distance between two vectors.
func SqDist(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("mlkit: SqDist length mismatch")
	}
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	mu := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - mu
		s += d * d
	}
	return s / float64(len(xs))
}

// StandardScaler standardizes features to zero mean and unit variance,
// column-wise. Constant columns scale to zero rather than dividing by
// zero.
type StandardScaler struct {
	Means, Stds []float64
}

// FitScaler learns column statistics from row-major samples.
func FitScaler(samples [][]float64) *StandardScaler {
	if len(samples) == 0 {
		return &StandardScaler{}
	}
	p := len(samples[0])
	s := &StandardScaler{Means: make([]float64, p), Stds: make([]float64, p)}
	for _, row := range samples {
		for j, v := range row {
			s.Means[j] += v
		}
	}
	n := float64(len(samples))
	for j := range s.Means {
		s.Means[j] /= n
	}
	for _, row := range samples {
		for j, v := range row {
			d := v - s.Means[j]
			s.Stds[j] += d * d
		}
	}
	for j := range s.Stds {
		s.Stds[j] = math.Sqrt(s.Stds[j] / n)
	}
	return s
}

// Transform standardizes one sample, returning a new slice.
func (s *StandardScaler) Transform(row []float64) []float64 {
	if len(s.Means) == 0 {
		return append([]float64(nil), row...)
	}
	out := make([]float64, len(row))
	for j, v := range row {
		if s.Stds[j] > 1e-12 {
			out[j] = (v - s.Means[j]) / s.Stds[j]
		}
	}
	return out
}

// TransformAll standardizes a batch of samples.
func (s *StandardScaler) TransformAll(rows [][]float64) [][]float64 {
	out := make([][]float64, len(rows))
	for i, r := range rows {
		out[i] = s.Transform(r)
	}
	return out
}
