// Package monitor simulates the three-layer monitoring and diagnostic
// subsystem of the Tianhe HPC systems described in Section IV-C: Board
// Management Units (BMU), Chassis Management Units (CMU) and a System
// Management Unit (SMU), connected by a dedicated monitoring network,
// sampling 200+ hardware indicators (voltage, current, temperature,
// humidity, liquid/air cooling, NIC health, ...).
//
// The failure-prediction plugin (package predict) consumes only this
// package's alert stream, exactly as ESlurm consumes alerts from the real
// monitoring network — so any alert source with comparable precision
// exercises the same code path (see DESIGN.md, "Substitutions").
//
// Determinism: sampling sweeps, alert emission and gray-node noise all
// run as events on the cluster's engine with labeled RNG streams, so the
// alert sequence replays bit-identically from the seed.
package monitor

import (
	"fmt"
	"math/rand"
	"time"

	"eslurm/internal/cluster"
	"eslurm/internal/satellite"
	"eslurm/internal/simnet"
)

// Severity classifies an alert.
type Severity int

const (
	// SevWarning indicates an indicator drifting out of its nominal band.
	SevWarning Severity = iota
	// SevCritical indicates an indicator past its critical threshold; the
	// node is expected to fail soon.
	SevCritical
	// SevFailure indicates the node has already failed (post-hoc report).
	SevFailure
)

func (s Severity) String() string {
	switch s {
	case SevWarning:
		return "warning"
	case SevCritical:
		return "critical"
	case SevFailure:
		return "failure"
	default:
		return fmt.Sprintf("Severity(%d)", int(s))
	}
}

// Indicators returns the catalogue of monitored hardware indicators. The
// real subsystem tracks 200+; we name the families and synthesize the
// rest. A function rather than a package-level slice so the catalogue is
// never mutable shared state (globalmut); each Subsystem caches its own
// copy at construction.
func Indicators() []string {
	families := []string{
		"voltage", "current", "temperature", "humidity",
		"liquid-cooling", "air-cooling", "nic", "memory", "power-supply", "fan",
	}
	var out []string
	for _, f := range families {
		for i := 0; i < 21; i++ {
			out = append(out, fmt.Sprintf("%s.%02d", f, i))
		}
	}
	return out // 210 indicators
}

// Alert is one monitoring event delivered to subscribers at the SMU.
type Alert struct {
	Node      cluster.NodeID
	Indicator string
	Severity  Severity
	// BMU/CMU identify the management units that observed and relayed the
	// alert.
	BMU, CMU int
	At       time.Duration
}

// Config parameterizes the monitoring subsystem.
type Config struct {
	// NodesPerBMU and BMUsPerCMU define the management hierarchy
	// (defaults: 8 nodes per board, 16 boards per chassis).
	NodesPerBMU int
	BMUsPerCMU  int
	// DetectionProb is the probability an impending failure produces a
	// pre-failure alert (predictor recall ceiling). Default 0.85 — the
	// paper reports 81.7% of failed nodes ending at leaves, which our
	// placement-exact rearranger maps directly to prediction recall.
	DetectionProb float64
	// LeadTime is the mean interval by which a pre-failure alert precedes
	// the failure. Default 10 minutes.
	LeadTime time.Duration
	// FalseAlertsPerNodeDay is the Poisson rate of spurious alerts per
	// node per day. The paper adopts "the principle of over-prediction":
	// false alerts only cost a leaf placement, never correctness.
	FalseAlertsPerNodeDay float64
	// RelayLatency is the per-hop latency of the dedicated monitoring
	// network (BMU→CMU→SMU).
	RelayLatency time.Duration
	// RepeatInterval is how often the subsystem re-raises the alarm for a
	// node that remains failed (a down node keeps tripping its board's
	// indicators). Default 10 minutes.
	RepeatInterval time.Duration
	// MaxRepeats bounds the re-alarm chain per failure episode (after
	// which the operator is assumed to have silenced the alarm). Default
	// 288 (two days at the default interval).
	MaxRepeats int
}

func (c Config) withDefaults() Config {
	if c.NodesPerBMU == 0 {
		c.NodesPerBMU = 8
	}
	if c.BMUsPerCMU == 0 {
		c.BMUsPerCMU = 16
	}
	if c.DetectionProb == 0 {
		c.DetectionProb = 0.85
	}
	if c.LeadTime == 0 {
		c.LeadTime = 10 * time.Minute
	}
	if c.RelayLatency == 0 {
		c.RelayLatency = 5 * time.Millisecond
	}
	if c.RepeatInterval == 0 {
		c.RepeatInterval = 10 * time.Minute
	}
	if c.MaxRepeats == 0 {
		c.MaxRepeats = 288
	}
	return c
}

// Subsystem is the simulated monitoring network for one cluster.
type Subsystem struct {
	cfg        Config
	cluster    *cluster.Cluster
	engine     *simnet.Engine
	rng        *rand.Rand
	subs       []func(Alert)
	indicators []string

	alertsEmitted int
	falseAlerts   int
}

// New builds the monitoring subsystem over a cluster. If
// cfg.FalseAlertsPerNodeDay > 0 a background spurious-alert process starts
// immediately.
func New(c *cluster.Cluster, cfg Config) *Subsystem {
	s := &Subsystem{
		cfg:        cfg.withDefaults(),
		cluster:    c,
		engine:     c.Engine,
		rng:        c.Engine.Rand("monitor"),
		indicators: Indicators(),
	}
	if s.cfg.FalseAlertsPerNodeDay > 0 {
		s.startNoise()
	}
	return s
}

// Subscribe registers a callback for every alert reaching the SMU.
func (s *Subsystem) Subscribe(fn func(Alert)) { s.subs = append(s.subs, fn) }

// Units returns (bmuID, cmuID) for a node.
func (s *Subsystem) Units(id cluster.NodeID) (bmu, cmu int) {
	bmu = int(id) / s.cfg.NodesPerBMU
	cmu = bmu / s.cfg.BMUsPerCMU
	return
}

// BMUCount returns the number of board management units covering the
// cluster.
func (s *Subsystem) BMUCount() int {
	return (s.cluster.Size() + s.cfg.NodesPerBMU - 1) / s.cfg.NodesPerBMU
}

// CMUCount returns the number of chassis management units.
func (s *Subsystem) CMUCount() int {
	return (s.BMUCount() + s.cfg.BMUsPerCMU - 1) / s.cfg.BMUsPerCMU
}

// AlertsEmitted returns total alerts delivered (including false alerts).
func (s *Subsystem) AlertsEmitted() int { return s.alertsEmitted }

// FalseAlerts returns the number of spurious alerts delivered.
func (s *Subsystem) FalseAlerts() int { return s.falseAlerts }

// emit relays an alert BMU → CMU → SMU and then fans it to subscribers.
func (s *Subsystem) emit(a Alert, spurious bool) {
	a.BMU, a.CMU = s.Units(a.Node)
	s.engine.After(2*s.cfg.RelayLatency, func() {
		a.At = s.engine.Now()
		s.alertsEmitted++
		if spurious {
			s.falseAlerts++
		}
		for _, fn := range s.subs {
			fn(a)
		}
	})
}

// NoticeImpendingFailure informs the subsystem that node will fail at
// failAt (virtual time). With probability DetectionProb the indicators
// drift early enough to produce a SevCritical alert LeadTime (±50%,
// uniform) before the failure; otherwise only the post-hoc SevFailure
// alert fires at failAt. Experiment failure injectors call this alongside
// Cluster.ScheduleFailure.
func (s *Subsystem) NoticeImpendingFailure(node cluster.NodeID, failAt time.Duration) {
	ind := s.indicators[s.rng.Intn(len(s.indicators))]
	if s.rng.Float64() < s.cfg.DetectionProb {
		lead := time.Duration(float64(s.cfg.LeadTime) * (0.5 + s.rng.Float64()))
		at := failAt - lead
		if at < s.engine.Now() {
			at = s.engine.Now()
		}
		s.engine.Schedule(at, func() {
			s.emit(Alert{Node: node, Indicator: ind, Severity: SevCritical}, false)
		})
	}
	s.engine.Schedule(failAt, func() {
		s.emit(Alert{Node: node, Indicator: ind, Severity: SevFailure}, false)
		// Keep alarming while the node stays down (bounded, so permanent
		// failures cannot pin the event loop forever).
		repeats := 0
		var again func()
		again = func() {
			s.engine.After(s.cfg.RepeatInterval, func() {
				if !s.cluster.Node(node).Failed() || repeats >= s.cfg.MaxRepeats {
					return
				}
				repeats++
				s.emit(Alert{Node: node, Indicator: ind, Severity: SevFailure}, false)
				again()
			})
		}
		again()
	})
}

// ObservePool subscribes the subsystem to a satellite pool's health
// signal: Table II demotions re-enter the normal alert pipeline as
// "satellite.pool" alerts (FAULT → critical, DOWN → failure), so the same
// subscribers that watch hardware indicators also see the relay layer
// degrade. Opt-in — wiring it adds alert events to the trace, so default
// experiment paths leave it off. Chains with any OnChange observer
// already installed on the pool.
func (s *Subsystem) ObservePool(p *satellite.Pool) {
	prev := p.OnChange
	p.OnChange = func(sat *satellite.Satellite, from, to satellite.State, h satellite.Health) {
		if prev != nil {
			prev(sat, from, to, h)
		}
		switch to {
		case satellite.Fault:
			s.emit(Alert{Node: sat.ID, Indicator: "satellite.pool", Severity: SevCritical}, false)
		case satellite.Down:
			s.emit(Alert{Node: sat.ID, Indicator: "satellite.pool", Severity: SevFailure}, false)
		}
	}
}

// startNoise emits spurious warning alerts at the configured Poisson rate
// across the whole cluster.
func (s *Subsystem) startNoise() {
	ratePerSec := s.cfg.FalseAlertsPerNodeDay * float64(s.cluster.Size()) / 86400.0
	if ratePerSec <= 0 {
		return
	}
	var next func()
	next = func() {
		// Exponential inter-arrival.
		gap := time.Duration(s.rng.ExpFloat64() / ratePerSec * float64(time.Second))
		s.engine.After(gap, func() {
			node := cluster.NodeID(s.rng.Intn(s.cluster.Size()))
			ind := s.indicators[s.rng.Intn(len(s.indicators))]
			s.emit(Alert{Node: node, Indicator: ind, Severity: SevWarning}, true)
			next()
		})
	}
	next()
}
