package monitor

import (
	"testing"
	"time"

	"eslurm/internal/cluster"
	"eslurm/internal/simnet"
)

func newSub(seed int64, computes int, cfg Config) (*cluster.Cluster, *Subsystem) {
	e := simnet.NewEngine(seed)
	c := cluster.New(e, cluster.Config{Computes: computes})
	return c, New(c, cfg)
}

func TestIndicatorCatalogue(t *testing.T) {
	inds := Indicators()
	if len(inds) < 200 {
		t.Fatalf("indicator catalogue has %d entries, paper requires 200+", len(inds))
	}
	seen := map[string]bool{}
	for _, in := range inds {
		if seen[in] {
			t.Fatalf("duplicate indicator %q", in)
		}
		seen[in] = true
	}
}

func TestUnitHierarchy(t *testing.T) {
	_, s := newSub(1, 1000, Config{})
	bmu, cmu := s.Units(0)
	if bmu != 0 || cmu != 0 {
		t.Error("node 0 must map to BMU 0 / CMU 0")
	}
	bmu, cmu = s.Units(500)
	if bmu != 500/8 {
		t.Errorf("BMU(500) = %d", bmu)
	}
	if cmu != (500/8)/16 {
		t.Errorf("CMU(500) = %d", cmu)
	}
	if s.BMUCount() <= 0 || s.CMUCount() <= 0 {
		t.Error("unit counts must be positive")
	}
	if s.BMUCount() < s.CMUCount() {
		t.Error("hierarchy inverted")
	}
}

func TestImpendingFailureAlertPrecedesFailure(t *testing.T) {
	c, s := newSub(2, 100, Config{DetectionProb: 1.0})
	var alerts []Alert
	s.Subscribe(func(a Alert) { alerts = append(alerts, a) })
	failAt := 2 * time.Hour
	node := c.Computes()[5]
	s.NoticeImpendingFailure(node, failAt)
	c.ScheduleFailure(node, failAt, 0)
	c.Engine.Run()

	if len(alerts) < 2 {
		t.Fatalf("alerts = %d, want critical + failure (+ repeats)", len(alerts))
	}
	crit, fail := alerts[0], alerts[1]
	if crit.Severity != SevCritical || fail.Severity != SevFailure {
		t.Fatalf("severities = %v, %v", crit.Severity, fail.Severity)
	}
	// The node never recovers, so the alarm repeats up to the cap.
	for _, a := range alerts[2:] {
		if a.Severity != SevFailure {
			t.Fatalf("repeat alert severity = %v", a.Severity)
		}
	}
	if crit.At >= failAt {
		t.Errorf("critical alert at %v not before failure at %v", crit.At, failAt)
	}
	if crit.Node != node {
		t.Error("alert names wrong node")
	}
}

func TestRepeatAlertsStopOnRecovery(t *testing.T) {
	c, s := newSub(9, 50, Config{DetectionProb: -1, RepeatInterval: 10 * time.Minute})
	count := 0
	s.Subscribe(func(a Alert) { count++ })
	node := c.Computes()[0]
	s.NoticeImpendingFailure(node, time.Hour)
	c.ScheduleFailure(node, time.Hour, 35*time.Minute) // recovers at t=1h35m
	c.Engine.RunUntil(6 * time.Hour)
	// Initial failure alert + repeats at +10, +20, +30 minutes; the checks
	// after recovery emit nothing.
	if count < 3 || count > 5 {
		t.Fatalf("alerts = %d, want ~4 (initial + 3 repeats before recovery)", count)
	}
}

func TestDetectionProbZeroGivesOnlyPostHoc(t *testing.T) {
	_, s := newSub(3, 100, Config{DetectionProb: -1}) // forced below any draw
	// DetectionProb<=0 is replaced by default in withDefaults only when 0;
	// use -1 to force "never detect" without triggering the default.
	var alerts []Alert
	s.Subscribe(func(a Alert) { alerts = append(alerts, a) })
	for i := 0; i < 20; i++ {
		s.NoticeImpendingFailure(cluster.NodeID(i+1), time.Hour)
	}
	// The nodes never actually fail (no ScheduleFailure), so no repeat
	// alarms fire: exactly one post-hoc alert each.
	s.engine.RunUntil(3 * time.Hour)
	for _, a := range alerts {
		if a.Severity != SevFailure {
			t.Fatalf("got pre-failure alert with detection disabled: %+v", a)
		}
	}
	if len(alerts) != 20 {
		t.Fatalf("post-hoc alerts = %d, want 20", len(alerts))
	}
}

func TestNoiseRate(t *testing.T) {
	c, s := newSub(4, 1000, Config{FalseAlertsPerNodeDay: 1.0})
	count := 0
	s.Subscribe(func(a Alert) {
		count++
		if a.Severity != SevWarning {
			t.Errorf("noise alert severity %v", a.Severity)
		}
	})
	c.Engine.RunUntil(24 * time.Hour)
	// Expect ~1000 spurious alerts (1/node/day); allow generous slack.
	if count < 700 || count > 1300 {
		t.Fatalf("spurious alerts in 24h = %d, want ~1000", count)
	}
	if s.FalseAlerts() != count {
		t.Errorf("FalseAlerts() = %d, emitted %d", s.FalseAlerts(), count)
	}
}

func TestDetectionProbStatistics(t *testing.T) {
	c, s := newSub(5, 2000, Config{DetectionProb: 0.85})
	crit := 0
	s.Subscribe(func(a Alert) {
		if a.Severity == SevCritical {
			crit++
		}
	})
	n := 1000
	for i := 0; i < n; i++ {
		s.NoticeImpendingFailure(c.Computes()[i], time.Hour)
	}
	c.Engine.Run()
	frac := float64(crit) / float64(n)
	if frac < 0.80 || frac > 0.90 {
		t.Fatalf("detection fraction = %.3f, want ~0.85", frac)
	}
}

func TestSeverityString(t *testing.T) {
	if SevWarning.String() != "warning" || SevCritical.String() != "critical" || SevFailure.String() != "failure" {
		t.Error("severity strings wrong")
	}
	if Severity(9).String() == "" {
		t.Error("unknown severity must print")
	}
}

func TestLateNoticeClampsToNow(t *testing.T) {
	c, s := newSub(6, 10, Config{DetectionProb: 1.0, LeadTime: time.Hour})
	var critAt time.Duration = -1
	s.Subscribe(func(a Alert) {
		if a.Severity == SevCritical {
			critAt = a.At
		}
	})
	// Failure in 1 minute, lead time ~1h: alert must clamp to ~now.
	c.Engine.Schedule(10*time.Second, func() {
		s.NoticeImpendingFailure(1, c.Engine.Now()+time.Minute)
	})
	c.Engine.Run()
	if critAt < 0 {
		t.Fatal("no critical alert")
	}
	if critAt > 11*time.Second {
		t.Errorf("clamped alert fired at %v, want ~10s", critAt)
	}
}
