package comm

import (
	"time"

	"eslurm/internal/cluster"
	"eslurm/internal/fptree"
	"eslurm/internal/obs"
	"eslurm/internal/predict"
)

// This file implements broadcast-with-gather: the payload flows down the
// relay tree and per-node acknowledgements flow back *up* it, merged at
// every interior node, so the origin receives one aggregated reply per
// first-layer subtree rather than one ack per node. This is the satellite
// node's "bidirectional communication buffer with initial data aggregation
// and processing capabilities" (Section III-A) realized as actual reverse-
// path messages rather than bookkeeping.

// GatherResult is the outcome of a BroadcastGather: the plain broadcast
// Result plus the time at which the origin held the complete aggregate.
type GatherResult struct {
	Result
	// AggregatedAt is when the last first-layer aggregate reached the
	// origin (equals Result.Elapsed by construction).
	AggregatedAt time.Duration
}

// GatherTree broadcasts over an FP-Tree and gathers merged
// acknowledgements back to the origin.
type GatherTree struct {
	// Width is the tree fan-out; zero takes fptree.DefaultWidth.
	Width int
	// Predictor supplies the predicted-failed set (nil = none).
	Predictor predict.Predictor
	// AckBytesPerNode sizes the aggregate messages (default 16).
	AckBytesPerNode int
}

// Name returns "gathertree".
func (GatherTree) Name() string { return "gathertree" }

func (g GatherTree) width() int {
	if g.Width == 0 {
		return fptree.DefaultWidth
	}
	return g.Width
}

func (g GatherTree) ackBytes() int {
	if g.AckBytesPerNode == 0 {
		return 16
	}
	return g.AckBytesPerNode
}

// subReply is one subtree's merged acknowledgement.
type subReply struct {
	ok  []cluster.NodeID
	bad []cluster.NodeID
}

// Broadcast implements Structure: done fires when the origin holds the
// full aggregate.
func (g GatherTree) Broadcast(b *Broadcaster, origin cluster.NodeID, targets []cluster.NodeID, size int, done func(Result)) {
	g.BroadcastGather(b, origin, targets, size, func(r GatherResult) {
		if done != nil {
			done(r.Result)
		}
	})
}

// BroadcastGather runs the broadcast+gather and reports the GatherResult.
func (g GatherTree) BroadcastGather(b *Broadcaster, origin cluster.NodeID, targets []cluster.NodeID, size int, done func(GatherResult)) {
	e := b.engine()
	start := e.Now()
	pred := g.Predictor
	if pred == nil {
		pred = predict.Null{}
	}
	trc := e.Tracer()
	span := trc.Start("comm.broadcast", b.SpanParent,
		obs.String("structure", "gathertree"), obs.Int("targets", len(targets)))
	b.SpanParent = 0
	planSpan := trc.Start("fptree.plan", span, obs.Int("targets", len(targets)), obs.Int("width", g.width()))
	list := fptree.Rearrange(targets, func(id cluster.NodeID) bool { return pred.Predicted(id) }, g.width())
	trc.End(planSpan)
	buildSpan := trc.Start("fptree.build", span, obs.Int("targets", len(list)))
	tr := fptree.Build(list, g.width())
	trc.End(buildSpan)

	res := GatherResult{}
	var lastDelivery time.Duration

	subtreeSize := func(n *fptree.Node[cluster.NodeID]) int {
		c := 1
		var rec func(m *fptree.Node[cluster.NodeID])
		rec = func(m *fptree.Node[cluster.NodeID]) {
			for _, ch := range m.Children {
				c++
				rec(ch)
			}
		}
		rec(n)
		return c
	}

	// visit delivers the payload to n's subtree from `from` and invokes
	// reply exactly once with the subtree's merged acknowledgement.
	var visit func(from cluster.NodeID, n *fptree.Node[cluster.NodeID], reply func(subReply))
	visit = func(from cluster.NodeID, n *fptree.Node[cluster.NodeID], reply func(subReply)) {
		sz := size + subtreeSize(n)*b.PerNodeListBytes
		b.send(from, n.Value, sz, &res.Result, span, func(delivered bool) {
			if !delivered {
				// Adoption: `from` contacts the dead child's children
				// directly and merges their replies itself.
				if b.OnResolve != nil {
					b.OnResolve(n.Value, false)
				}
				merged := subReply{bad: []cluster.NodeID{n.Value}}
				pending := len(n.Children)
				if pending == 0 {
					reply(merged)
					return
				}
				for _, ch := range n.Children {
					visit(from, ch, func(r subReply) {
						merged.ok = append(merged.ok, r.ok...)
						merged.bad = append(merged.bad, r.bad...)
						pending--
						if pending == 0 {
							reply(merged)
						}
					})
				}
				return
			}
			if d := e.Now() - start; d > lastDelivery {
				lastDelivery = d
			}
			if b.OnResolve != nil {
				b.OnResolve(n.Value, true)
			}
			merged := subReply{ok: []cluster.NodeID{n.Value}}
			finish := func() {
				// The aggregate travels up as one real message sized by the
				// subtree's node count. A lost aggregate (parent died) is
				// degraded to local bookkeeping so the gather still
				// terminates.
				aggSz := (len(merged.ok) + len(merged.bad)) * g.ackBytes()
				b.send(n.Value, from, aggSz, &res.Result, span, func(bool) { reply(merged) })
			}
			if len(n.Children) == 0 {
				e.After(b.relayDelay(n.Value), finish)
				return
			}
			e.After(b.relayDelay(n.Value), func() {
				pending := len(n.Children)
				for _, ch := range n.Children {
					visit(n.Value, ch, func(r subReply) {
						merged.ok = append(merged.ok, r.ok...)
						merged.bad = append(merged.bad, r.bad...)
						pending--
						if pending == 0 {
							finish()
						}
					})
				}
			})
		})
	}

	// seal finalizes the registry instruments and the root span once the
	// origin holds the complete aggregate (or the target list was empty).
	seal := func() {
		in := b.inst()
		in.delivered.Add(int64(res.Delivered))
		in.unreachable.Add(int64(len(res.Unreachable)))
		in.elapsed.Observe(int64(res.Elapsed))
		trc.SetAttrInt(span, "delivered", res.Delivered)
		trc.SetAttrInt(span, "unreachable", len(res.Unreachable))
		trc.End(span)
	}

	pending := len(tr.Roots)
	if pending == 0 {
		res.Elapsed = 0
		seal()
		if done != nil {
			done(res)
		}
		return
	}
	for _, r := range tr.Roots {
		visit(origin, r, func(sr subReply) {
			res.Delivered += len(sr.ok)
			if b.RecordResolved {
				res.Resolved = append(res.Resolved, sr.ok...)
			}
			res.Unreachable = append(res.Unreachable, sr.bad...)
			pending--
			if pending == 0 {
				res.Elapsed = e.Now() - start
				res.AggregatedAt = res.Elapsed
				res.DeliveredElapsed = lastDelivery
				seal()
				if done != nil {
					done(res)
				}
			}
		})
	}
}
