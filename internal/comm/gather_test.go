package comm

import (
	"testing"
	"time"

	"eslurm/internal/cluster"
	"eslurm/internal/predict"
	"eslurm/internal/simnet"
)

func runGather(t *testing.T, seed int64, computes int, failed []int, pred predict.Predictor) GatherResult {
	t.Helper()
	e := simnet.NewEngine(seed)
	c := cluster.New(e, cluster.Config{Computes: computes, Satellites: 1})
	targets := c.Computes()
	for _, i := range failed {
		c.Fail(targets[i])
	}
	b := NewBroadcaster(c)
	var res GatherResult
	got := false
	GatherTree{Width: 8, Predictor: pred}.BroadcastGather(b, c.Satellites()[0], targets, 512,
		func(r GatherResult) { res = r; got = true })
	e.Run()
	if !got {
		t.Fatal("gather never completed")
	}
	return res
}

func TestGatherHealthy(t *testing.T) {
	res := runGather(t, 1, 200, nil, nil)
	if res.Delivered != 200 || len(res.Unreachable) != 0 {
		t.Fatalf("delivered=%d unreachable=%d", res.Delivered, len(res.Unreachable))
	}
	// Aggregation takes strictly longer than delivery: replies must climb
	// back up the tree.
	if res.AggregatedAt <= res.DeliveredElapsed {
		t.Errorf("aggregate (%v) not after last delivery (%v)", res.AggregatedAt, res.DeliveredElapsed)
	}
	// ~2 messages per node (payload down + aggregate up).
	if res.Messages < 2*200 || res.Messages > 2*200+50 {
		t.Errorf("messages = %d, want ~400", res.Messages)
	}
}

func TestGatherEmptyTargets(t *testing.T) {
	res := runGather(t, 2, 0, nil, nil)
	if res.Delivered != 0 || res.Elapsed != 0 {
		t.Fatalf("empty gather: %+v", res)
	}
}

func TestGatherAccountsFailures(t *testing.T) {
	failed := []int{0, 7, 50, 121}
	res := runGather(t, 3, 150, failed, nil)
	if res.Delivered != 146 {
		t.Errorf("delivered = %d, want 146", res.Delivered)
	}
	if len(res.Unreachable) != 4 {
		t.Fatalf("unreachable = %v", res.Unreachable)
	}
	// Every target resolves exactly once.
	if res.Delivered+len(res.Unreachable) != 150 {
		t.Error("resolution count wrong")
	}
}

func TestGatherMatchesBroadcastSets(t *testing.T) {
	// The gather's delivered/unreachable partition must equal the plain
	// FP-Tree broadcast's on the same cluster state.
	failed := []int{3, 30, 99}
	g := runGather(t, 4, 120, failed, nil)
	p := runBroadcast(t, 4, 120, failed, FPTree{Width: 8}, nil)
	if g.Delivered != p.Delivered || len(g.Unreachable) != len(p.Unreachable) {
		t.Fatalf("gather %d/%d vs broadcast %d/%d",
			g.Delivered, len(g.Unreachable), p.Delivered, len(p.Unreachable))
	}
}

func TestGatherPredictionSpeedsDelivery(t *testing.T) {
	// Prediction moves the failed interior node to a leaf: healthy
	// delivery stays in milliseconds instead of waiting on the timeout.
	// The *aggregate* still pays exactly one timeout round either way —
	// it must report the dead node — so AggregatedAt sits just past the
	// 3 s retry window in both runs.
	failed := []int{0}
	blind := runGather(t, 5, 256, failed, nil)
	pred := predict.Static{}
	// NodeID of compute 0 given 1 satellite: master=0, satellite=1, so
	// compute IDs start at 2.
	pred[cluster.NodeID(2)] = true
	informed := runGather(t, 5, 256, failed, pred)
	if informed.DeliveredElapsed >= blind.DeliveredElapsed {
		t.Errorf("prediction did not speed delivery: %v vs %v",
			informed.DeliveredElapsed, blind.DeliveredElapsed)
	}
	if informed.DeliveredElapsed > 100*time.Millisecond {
		t.Errorf("informed delivery = %v, want milliseconds", informed.DeliveredElapsed)
	}
	for _, r := range []GatherResult{blind, informed} {
		if r.AggregatedAt < 3*time.Second || r.AggregatedAt > 4*time.Second {
			t.Errorf("aggregation = %v, want one ~3s timeout round", r.AggregatedAt)
		}
	}
}

func TestGatherViaStructureInterface(t *testing.T) {
	// GatherTree also satisfies Structure for drop-in comparisons.
	e := simnet.NewEngine(6)
	c := cluster.New(e, cluster.Config{Computes: 64, Satellites: 1})
	b := NewBroadcaster(c)
	var s Structure = GatherTree{Width: 4}
	var res Result
	s.Broadcast(b, c.Satellites()[0], c.Computes(), 128, func(r Result) { res = r })
	e.Run()
	if res.Delivered != 64 {
		t.Fatalf("delivered %d via Structure interface", res.Delivered)
	}
	if s.Name() != "gathertree" {
		t.Error("name wrong")
	}
}
