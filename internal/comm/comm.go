// Package comm implements the five communication structures compared in
// Section VII-A (Fig. 8b): ring, star, shared-memory, plain k-ary tree and
// the FP-Tree, all with identical fault-tolerance semantics so the
// comparison isolates the structure itself — exactly as the paper does
// ("we separate the communication structure from RM and reproduce various
// structures using the same techniques ... the number of retries for
// connection failure is set to three").
//
// A broadcast delivers one payload from an origin node to a set of target
// nodes. A delivery to a failed node costs the sender the connect timeout
// per attempt; after Retries attempts the target is declared unreachable.
// For relay structures (ring, tree) the fault-tolerance mechanism then
// re-routes around the failed node: the ring skips it, the tree parent
// adopts the failed child's subtree.
//
// Determinism: all delivery, retry and adoption logic runs as events on
// the broadcaster's engine, with backoff jitter drawn from labeled RNG
// streams — same seed, same delivery schedule. The comm.* spans and
// counters recorded through the obs layer are passive observations and
// never alter that schedule.
package comm

import (
	"math/rand"
	"time"

	"eslurm/internal/cluster"
	"eslurm/internal/fptree"
	"eslurm/internal/obs"
	"eslurm/internal/predict"
	"eslurm/internal/simnet"
)

// Result summarizes one completed broadcast.
type Result struct {
	// Delivered is the number of targets that received the payload.
	Delivered int
	// Resolved lists the delivered targets in resolution order. It is
	// populated only when Broadcaster.RecordResolved is set (the chaos
	// harness's exactly-once invariant needs identities, not just counts);
	// otherwise it stays nil and costs nothing.
	Resolved []cluster.NodeID
	// Unreachable lists targets that could not be reached after retries.
	Unreachable []cluster.NodeID
	// Elapsed is the time from broadcast start to the last delivery or
	// final failure determination, i.e. when the whole task resolves.
	Elapsed time.Duration
	// DeliveredElapsed is the time from broadcast start until the last
	// *successful* delivery — the "message broadcast time" the paper plots
	// (the message has reached every reachable node; timeout bookkeeping
	// for dead leaves may still be draining).
	DeliveredElapsed time.Duration
	// Messages is the total number of link messages sent, including
	// retries.
	Messages int
	// Retries is the number of retry attempts performed.
	Retries int
}

// RetryPolicy configures the per-link delivery retry loop. The zero
// policy is not meaningful; a nil *RetryPolicy on the Broadcaster selects
// the paper's fixed-count immediate-retry behaviour (Broadcaster.Retries
// attempts, no backoff), which is also what every existing experiment
// uses — the policy is strictly additive to the recorded traces.
type RetryPolicy struct {
	// MaxAttempts is the total number of connection attempts per link
	// (first try included). Values below 1 are treated as 1.
	MaxAttempts int
	// Backoff is the wait before the second attempt; each further attempt
	// multiplies it by BackoffFactor (default 2), capped at MaxBackoff.
	Backoff time.Duration
	// BackoffFactor is the exponential growth factor (values below 1 are
	// treated as the default 2).
	BackoffFactor float64
	// MaxBackoff caps the per-attempt backoff; zero means uncapped.
	MaxBackoff time.Duration
	// JitterFrac adds a uniform random extra delay in [0, JitterFrac ×
	// backoff) to each wait, drawn from the deterministic engine stream
	// "comm/retry" — same seed, same jitter, bit for bit.
	JitterFrac float64
	// Deadline bounds one delivery chain: once a chain (attempt +
	// backoffs) has been running this long, no further attempt is made
	// and the link resolves unreachable. Zero means no deadline.
	Deadline time.Duration
}

// backoff returns the wait before attempt number next (2-based: the wait
// scheduled after `next-1` failed attempts).
func (p *RetryPolicy) backoff(next int) time.Duration {
	d := p.Backoff
	f := p.BackoffFactor
	if f < 1 {
		f = 2
	}
	for i := 2; i < next; i++ {
		d = time.Duration(float64(d) * f)
		if p.MaxBackoff > 0 && d > p.MaxBackoff {
			return p.MaxBackoff
		}
	}
	if p.MaxBackoff > 0 && d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	return d
}

// Broadcaster carries the shared mechanics (retry policy, per-message
// daemon costs, per-node connection limits) used by every structure.
type Broadcaster struct {
	Cluster *cluster.Cluster
	// Retries is the number of connection attempts per link (paper: 3),
	// retried immediately. Ignored when Retry is set.
	Retries int
	// Retry, when non-nil, replaces the fixed immediate-retry loop with
	// exponential backoff, deterministic jitter and a per-chain deadline.
	Retry *RetryPolicy
	// SendOverhead is the sender-side CPU/dispatch cost to initiate one
	// message (serialization, thread hand-off).
	SendOverhead time.Duration
	// RelayOverhead is the receiver-side processing cost before a relay
	// node forwards to its children. Gray (alive-but-slow) relays pay
	// this inflated by their slowdown factor.
	RelayOverhead time.Duration
	// MaxConcurrent caps simultaneous outstanding connections per sender
	// (daemon thread-pool / fd limit). Star broadcasts from one origin are
	// throttled by this; tree fan-outs (≤ width) rarely are.
	MaxConcurrent int
	// PerNodeListBytes is the wire overhead per participant carried in
	// relay messages (the sub-nodelist).
	PerNodeListBytes int
	// RecordResolved, when set, makes every Result carry the delivered
	// targets' identities (Result.Resolved) for invariant checking.
	RecordResolved bool
	// OnResolve, when non-nil, is invoked exactly once per (broadcast,
	// target) at the virtual instant the target resolves — delivered or
	// declared unreachable. It must not schedule events.
	OnResolve func(to cluster.NodeID, ok bool)
	// SpanParent, when non-zero, parents the *next* broadcast's root
	// span: the master sets it immediately before handing a sub-list to
	// a Structure (which builds its tracker synchronously), and the
	// tracker consumes and clears it. Zero — the default — makes
	// broadcast spans roots.
	SpanParent obs.SpanID

	limiters map[cluster.NodeID]*limiter
	retryRng *rand.Rand
	in       *instruments
}

// instruments caches the broadcaster's registry handles so hot paths pay
// a field read, not a map lookup. Built on first use from the engine's
// registry (see simnet.Engine.Metrics).
type instruments struct {
	delivered   *obs.Counter
	unreachable *obs.Counter
	messages    *obs.Counter
	retries     *obs.Counter
	outstanding *obs.Gauge
	elapsed     *obs.Histogram
}

// broadcastElapsedBounds returns the comm.broadcast_elapsed_ns bucket
// edges: decades from 1 ms to 1000 s, covering a healthy in-rack delivery
// through a full retry-and-timeout drain. Built per call (once per
// Broadcaster) so the bounds are never package-level mutable state.
func broadcastElapsedBounds() []int64 {
	return []int64{
		int64(time.Millisecond),
		int64(10 * time.Millisecond),
		int64(100 * time.Millisecond),
		int64(time.Second),
		int64(10 * time.Second),
		int64(100 * time.Second),
		int64(1000 * time.Second),
	}
}

func (b *Broadcaster) inst() *instruments {
	if b.in == nil {
		m := b.engine().Metrics()
		b.in = &instruments{
			delivered:   m.Counter("comm.delivered"),
			unreachable: m.Counter("comm.unreachable"),
			messages:    m.Counter("comm.messages"),
			retries:     m.Counter("comm.retries"),
			outstanding: m.Gauge("comm.outstanding_sends"),
			elapsed:     m.Histogram("comm.broadcast_elapsed_ns", broadcastElapsedBounds()),
		}
	}
	return b.in
}

// NewBroadcaster returns a Broadcaster with the paper's defaults.
func NewBroadcaster(c *cluster.Cluster) *Broadcaster {
	return &Broadcaster{
		Cluster:          c,
		Retries:          3,
		SendOverhead:     30 * time.Microsecond,
		RelayOverhead:    200 * time.Microsecond,
		MaxConcurrent:    128,
		PerNodeListBytes: 16,
		limiters:         make(map[cluster.NodeID]*limiter),
	}
}

func (b *Broadcaster) engine() *simnet.Engine { return b.Cluster.Engine }

// limiter serializes access to a sender's connection slots.
type limiter struct {
	max   int
	inUse int
	queue []func()
}

func (b *Broadcaster) limiter(id cluster.NodeID) *limiter {
	l, ok := b.limiters[id]
	if !ok {
		l = &limiter{max: b.MaxConcurrent}
		b.limiters[id] = l
	}
	return l
}

func (l *limiter) acquire(fn func()) {
	if l.inUse < l.max {
		l.inUse++
		fn()
		return
	}
	l.queue = append(l.queue, fn)
}

func (l *limiter) release() {
	if len(l.queue) > 0 {
		next := l.queue[0]
		l.queue = l.queue[1:]
		next()
		return
	}
	l.inUse--
}

// maxAttempts returns the attempt budget of the active retry policy.
func (b *Broadcaster) maxAttempts() int {
	if b.Retry != nil {
		if b.Retry.MaxAttempts < 1 {
			return 1
		}
		return b.Retry.MaxAttempts
	}
	return b.Retries
}

// retryDelay returns how long to wait before attempt number next (jitter
// included). The fixed-count legacy policy retries immediately.
func (b *Broadcaster) retryDelay(next int) time.Duration {
	p := b.Retry
	if p == nil {
		return 0
	}
	d := p.backoff(next)
	if p.JitterFrac > 0 && d > 0 {
		if b.retryRng == nil {
			b.retryRng = b.engine().Rand("comm/retry")
		}
		if span := int64(float64(d) * p.JitterFrac); span > 0 {
			d += time.Duration(b.retryRng.Int63n(span))
		}
	}
	return d
}

// send delivers one message with retries, occupying a connection slot of
// the sender from dispatch until resolution. cb receives true on delivery,
// exactly once: duplicated deliveries (NetConfig.DupProb) are deduplicated
// here, so Delivered never double-counts a target. parent, when tracing
// is enabled, parents the delivery-chain span (comm.send) under the
// broadcast that issued it.
func (b *Broadcaster) send(from, to cluster.NodeID, size int, res *Result, parent obs.SpanID, cb func(ok bool)) {
	e := b.engine()
	in := b.inst()
	lim := b.limiter(from)
	in.outstanding.Add(1)
	tr := e.Tracer()
	span := tr.Start("comm.send", parent, obs.Int("from", int(from)), obs.Int("to", int(to)))
	lim.acquire(func() {
		attempts := 0
		resolved := false
		chainStart := e.Now()
		settle := func(ok bool) {
			resolved = true
			in.outstanding.Add(-1)
			tr.SetAttrInt(span, "attempts", attempts)
			if !ok {
				tr.SetAttr(span, "ok", "false")
			}
			tr.End(span)
			lim.release()
			cb(ok)
		}
		var attempt func()
		attempt = func() {
			attempts++
			res.Messages++
			in.messages.Inc()
			if attempts > 1 {
				res.Retries++
				in.retries.Inc()
				tr.Instant("comm.retry", span, obs.Int("attempt", attempts))
			}
			b.Cluster.Node(from).Meter.ChargeCPU(b.SendOverhead)
			e.After(b.SendOverhead, func() {
				b.Cluster.Net.Send(from, to, size,
					func() { // delivered (possibly again: dedup)
						if resolved {
							return
						}
						settle(true)
					},
					func() { // attempt failed
						if resolved {
							return
						}
						if attempts < b.maxAttempts() && !b.pastDeadline(chainStart) {
							if d := b.retryDelay(attempts + 1); d > 0 {
								// Re-check the deadline when the backoff
								// timer fires: a Deadline expiring
								// mid-backoff must resolve the chain
								// (exactly once, via the resolved guard)
								// rather than launch an attempt past the
								// documented budget.
								e.After(d, func() {
									if resolved {
										return
									}
									if b.pastDeadline(chainStart) {
										settle(false)
										return
									}
									attempt()
								})
							} else {
								attempt()
							}
							return
						}
						settle(false)
					})
			})
		}
		attempt()
	})
}

// pastDeadline reports whether a delivery chain begun at start has
// exhausted the policy's per-chain deadline.
func (b *Broadcaster) pastDeadline(start time.Duration) bool {
	return b.Retry != nil && b.Retry.Deadline > 0 && b.engine().Now()-start >= b.Retry.Deadline
}

// OutstandingSends returns the number of delivery chains currently in
// flight (holding or queued for a connection slot) across all senders.
// Zero means the communication layer is fully drained — a teardown
// invariant the chaos harness checks. The count lives in the registry
// gauge comm.outstanding_sends; this accessor is the back-compat view.
func (b *Broadcaster) OutstandingSends() int { return int(b.inst().outstanding.Value()) }

// relayDelay returns the relay processing cost at a node: RelayOverhead,
// inflated by the node's gray-failure factor when it is degraded.
func (b *Broadcaster) relayDelay(id cluster.NodeID) time.Duration {
	g := b.Cluster.Net.GrayFactor(id)
	if g <= 1 {
		return b.RelayOverhead
	}
	return time.Duration(float64(b.RelayOverhead) * g)
}

// Send delivers one point-to-point message with the broadcaster's retry
// policy, outside of any broadcast. cb receives true on delivery, false
// once all attempts are exhausted. Used by the master daemon for
// master↔satellite task hand-offs and heartbeats. The delivery-chain
// span, if tracing is on, is parented under the consumed SpanParent.
func (b *Broadcaster) Send(from, to cluster.NodeID, size int, cb func(ok bool)) {
	var scratch Result
	parent := b.SpanParent
	b.SpanParent = 0
	b.send(from, to, size, &scratch, parent, cb)
}

// tracker counts outstanding deliveries and finalizes the Result. It
// also owns the broadcast's root span (comm.broadcast) and feeds the
// registry's delivery counters and latency histogram.
type tracker struct {
	b       *Broadcaster
	engine  *simnet.Engine
	start   time.Duration
	pending int
	res     Result
	done    func(Result)
	span    obs.SpanID
}

func newTracker(b *Broadcaster, structure string, pending int, done func(Result)) *tracker {
	e := b.engine()
	t := &tracker{b: b, engine: e, start: e.Now(), pending: pending, done: done}
	parent := b.SpanParent
	b.SpanParent = 0
	t.span = e.Tracer().Start("comm.broadcast", parent,
		obs.String("structure", structure), obs.Int("targets", pending))
	if pending == 0 {
		t.finish()
	}
	return t
}

func (t *tracker) resolve(res *Result, id cluster.NodeID, ok bool) {
	if t.b.OnResolve != nil {
		t.b.OnResolve(id, ok)
	}
	if ok {
		res.Delivered++
		t.b.inst().delivered.Inc()
		if t.b.RecordResolved {
			res.Resolved = append(res.Resolved, id)
		}
		if d := t.engine.Now() - t.start; d > res.DeliveredElapsed {
			res.DeliveredElapsed = d
		}
	} else {
		res.Unreachable = append(res.Unreachable, id)
		t.b.inst().unreachable.Inc()
	}
	t.pending--
	if t.pending == 0 {
		t.finish()
	}
}

func (t *tracker) add(n int) { t.pending += n }

func (t *tracker) finish() {
	t.res.Elapsed = t.engine.Now() - t.start
	t.b.inst().elapsed.Observe(int64(t.res.Elapsed))
	if tr := t.engine.Tracer(); tr != nil {
		tr.SetAttrInt(t.span, "delivered", t.res.Delivered)
		tr.SetAttrInt(t.span, "unreachable", len(t.res.Unreachable))
		tr.End(t.span)
	}
	if t.done != nil {
		t.done(t.res)
	}
}

// Structure is one broadcast topology.
type Structure interface {
	// Name identifies the structure in experiment output.
	Name() string
	// Broadcast delivers size payload bytes from origin to targets and
	// invokes done exactly once with the outcome. The targets slice is not
	// retained.
	Broadcast(b *Broadcaster, origin cluster.NodeID, targets []cluster.NodeID, size int, done func(Result))
}

// ---------------------------------------------------------------------------
// Star: the origin contacts every target directly (a centralized master's
// broadcast). Bounded by the origin's MaxConcurrent slots: failures hold
// slots for retries × timeout, so broadcast time grows with failure count.

// Star broadcasts directly from the origin to all targets.
type Star struct{}

// Name returns "star".
func (Star) Name() string { return "star" }

// Broadcast implements Structure.
func (Star) Broadcast(b *Broadcaster, origin cluster.NodeID, targets []cluster.NodeID, size int, done func(Result)) {
	t := newTracker(b, "star", len(targets), done)
	for _, id := range targets {
		id := id
		b.send(origin, id, size, &t.res, t.span, func(ok bool) { t.resolve(&t.res, id, ok) })
	}
}

// ---------------------------------------------------------------------------
// Ring: the message travels target-to-target in list order. A failed node
// is skipped after retries; its successor is contacted by the predecessor.

// Ring broadcasts by relaying along the target list.
type Ring struct{}

// Name returns "ring".
func (Ring) Name() string { return "ring" }

// Broadcast implements Structure.
func (Ring) Broadcast(b *Broadcaster, origin cluster.NodeID, targets []cluster.NodeID, size int, done func(Result)) {
	t := newTracker(b, "ring", len(targets), done)
	ids := append([]cluster.NodeID(nil), targets...)
	var hop func(from cluster.NodeID, idx int)
	hop = func(from cluster.NodeID, idx int) {
		if idx >= len(ids) {
			return
		}
		to := ids[idx]
		// The relay message carries the remaining list.
		sz := size + (len(ids)-idx)*b.PerNodeListBytes
		b.send(from, to, sz, &t.res, t.span, func(ok bool) {
			t.resolve(&t.res, to, ok)
			if ok {
				d := b.relayDelay(to)
				b.Cluster.Node(to).Meter.ChargeCPU(d)
				b.engine().After(d, func() { hop(to, idx+1) })
			} else {
				// Skip the dead node: the same sender tries its successor.
				hop(from, idx+1)
			}
		})
	}
	hop(origin, 0)
}

// ---------------------------------------------------------------------------
// SharedMem: the origin publishes the payload to a shared-memory service
// and every target fetches it. The service processes fetches sequentially,
// so broadcast time is ~n × service time, nearly independent of failures
// (failed nodes simply never fetch).

// SharedMem broadcasts via a publish/fetch shared-memory service hosted on
// the origin.
type SharedMem struct {
	// ServiceTime is the per-fetch handling cost at the service. Zero
	// takes a 1.2 ms default, calibrated so a 4K-node fetch storm drains
	// in a few seconds as in Fig. 8b.
	ServiceTime time.Duration
}

// Name returns "sharedmem".
func (SharedMem) Name() string { return "sharedmem" }

// Broadcast implements Structure.
func (s SharedMem) Broadcast(b *Broadcaster, origin cluster.NodeID, targets []cluster.NodeID, size int, done func(Result)) {
	st := s.ServiceTime
	if st == 0 {
		st = 1200 * time.Microsecond
	}
	e := b.engine()
	t := newTracker(b, "sharedmem", len(targets), done)
	// Publish: one write into the shared segment.
	b.Cluster.Node(origin).Meter.ChargeCPU(b.SendOverhead)
	timeout := b.Cluster.Net.Config().ConnectTimeout
	queue := time.Duration(0)
	for _, id := range targets {
		id := id
		if b.Cluster.Node(id).Failed() {
			// A failed node never issues its fetch; the service notices
			// the missing ack after its timeout when collecting results.
			e.After(timeout, func() {
				t.resolve(&t.res, id, false)
			})
			continue
		}
		queue += st
		delay := queue + b.Cluster.Net.TransferTime(size)
		t.res.Messages++
		b.inst().messages.Inc()
		e.After(delay, func() {
			// The node may have failed while queued behind earlier fetches
			// (a mid-broadcast failure): its fetch never happens and the
			// service notices the missing ack after its timeout.
			if b.Cluster.Node(id).Failed() {
				e.After(timeout, func() { t.resolve(&t.res, id, false) })
				return
			}
			b.Cluster.Node(id).Meter.CountMessage(false, size)
			t.resolve(&t.res, id, true)
		})
	}
}

// ---------------------------------------------------------------------------
// KTree: classic k-ary relay tree over the target list order. A failed
// interior node's parent adopts its children after retries — the expensive
// re-routing that FP-Tree avoids.

// KTree broadcasts over a width-W relay tree built from the list order.
type KTree struct {
	// Width is the tree fan-out; zero takes fptree.DefaultWidth.
	Width int
}

// Name returns "tree".
func (KTree) Name() string { return "tree" }

func (k KTree) width() int {
	if k.Width == 0 {
		return fptree.DefaultWidth
	}
	return k.Width
}

// Broadcast implements Structure.
func (k KTree) Broadcast(b *Broadcaster, origin cluster.NodeID, targets []cluster.NodeID, size int, done func(Result)) {
	span := b.engine().Tracer().Start("fptree.build", b.SpanParent,
		obs.Int("targets", len(targets)), obs.Int("width", k.width()))
	tr := fptree.Build(append([]cluster.NodeID(nil), targets...), k.width())
	b.engine().Tracer().End(span)
	broadcastTree(b, "tree", origin, tr, size, done)
}

// broadcastTree relays a payload down a materialized tree with parent-
// adoption fault tolerance.
func broadcastTree(b *Broadcaster, structure string, origin cluster.NodeID, tr *fptree.Tree[cluster.NodeID], size int, done func(Result)) {
	e := b.engine()
	t := newTracker(b, structure, tr.Size(), done)

	var dispatch func(from cluster.NodeID, n *fptree.Node[cluster.NodeID])
	subtreeSize := func(n *fptree.Node[cluster.NodeID]) int {
		// Count nodes in the subtree for message sizing.
		c := 1
		var rec func(m *fptree.Node[cluster.NodeID])
		rec = func(m *fptree.Node[cluster.NodeID]) {
			for _, ch := range m.Children {
				c++
				rec(ch)
			}
		}
		rec(n)
		return c
	}
	dispatch = func(from cluster.NodeID, n *fptree.Node[cluster.NodeID]) {
		sz := size + subtreeSize(n)*b.PerNodeListBytes
		b.send(from, n.Value, sz, &t.res, t.span, func(ok bool) {
			t.resolve(&t.res, n.Value, ok)
			if ok {
				if len(n.Children) == 0 {
					return
				}
				d := b.relayDelay(n.Value)
				b.Cluster.Node(n.Value).Meter.ChargeCPU(d)
				e.After(d, func() {
					for _, ch := range n.Children {
						dispatch(n.Value, ch)
					}
				})
				return
			}
			// Fault tolerance: the parent adopts the failed child's
			// children and contacts them directly.
			if len(n.Children) > 0 {
				e.Tracer().Instant("comm.adopt", t.span,
					obs.Int("failed", int(n.Value)), obs.Int("children", len(n.Children)))
			}
			for _, ch := range n.Children {
				dispatch(from, ch)
			}
		})
	}
	for _, r := range tr.Roots {
		dispatch(origin, r)
	}
	if len(tr.Roots) == 0 {
		// Empty target list: tracker already finished.
		_ = t
	}
}

// ---------------------------------------------------------------------------
// FPTree: the paper's structure — rearrange the list so predicted-failed
// nodes are leaves, then broadcast over the k-ary tree.

// FPTree broadcasts over the failure-prediction-rearranged relay tree.
type FPTree struct {
	// Width is the tree fan-out; zero takes fptree.DefaultWidth.
	Width int
	// Predictor supplies the predicted-failed set; nil behaves like
	// predict.Null (plain tree).
	Predictor predict.Predictor
	// Stats, when non-nil, accumulates placement statistics for the
	// FP-Tree placement experiment (§VII-A).
	Stats *PlacementStats
}

// PlacementStats accumulates how many actually-failed nodes the FP-Tree
// proactively identified — predicted at construction time and therefore
// deliberately placed at leaf positions (the paper reports 81.7%). A
// failed node that merely lands on a leaf by chance (most slots of a wide
// tree are leaves) does not count: the statistic measures the prediction
// pipeline, not slot geometry.
type PlacementStats struct {
	TreesBuilt        int
	NodesTotal        int
	FailedEncountered int
	FailedAtLeaves    int
}

// LeafPlacementRatio returns FailedAtLeaves / FailedEncountered.
func (p *PlacementStats) LeafPlacementRatio() float64 {
	if p.FailedEncountered == 0 {
		return 0
	}
	return float64(p.FailedAtLeaves) / float64(p.FailedEncountered)
}

// Name returns "fptree".
func (FPTree) Name() string { return "fptree" }

func (f FPTree) width() int {
	if f.Width == 0 {
		return fptree.DefaultWidth
	}
	return f.Width
}

// Plan returns the rearranged target list without broadcasting — used by
// tests and by the FP-Tree constructor pipeline.
func (f FPTree) Plan(targets []cluster.NodeID) []cluster.NodeID {
	pred := f.Predictor
	if pred == nil {
		pred = predict.Null{}
	}
	return fptree.Rearrange(targets, func(id cluster.NodeID) bool { return pred.Predicted(id) }, f.width())
}

// Broadcast implements Structure.
func (f FPTree) Broadcast(b *Broadcaster, origin cluster.NodeID, targets []cluster.NodeID, size int, done func(Result)) {
	pred := f.Predictor
	if pred == nil {
		pred = predict.Null{}
	}
	trc := b.engine().Tracer()
	span := trc.Start("fptree.plan", b.SpanParent,
		obs.Int("targets", len(targets)), obs.Int("width", f.width()))
	list := f.Plan(targets)
	trc.End(span)
	span = trc.Start("fptree.build", b.SpanParent, obs.Int("targets", len(list)))
	tr := fptree.Build(list, f.width())
	trc.End(span)
	if f.Stats != nil {
		f.Stats.TreesBuilt++
		f.Stats.NodesTotal += len(list)
		slots := fptree.LeafSlots(len(list), f.width())
		for i, id := range list {
			if b.Cluster.Node(id).Failed() {
				f.Stats.FailedEncountered++
				if slots[i] && pred.Predicted(id) {
					f.Stats.FailedAtLeaves++
				}
			}
		}
	}
	broadcastTree(b, "fptree", origin, tr, size, done)
}

// ---------------------------------------------------------------------------
// Binomial: the classic MPI broadcast tree. In round k, every node that
// already holds the message forwards it to one new peer, so delivery takes
// ⌈log2 n⌉ rounds with at most one outstanding send per holder. Included
// as the standard message-passing baseline alongside the paper's four
// structures; like the plain k-ary tree, a failed interior node stalls the
// whole block it was responsible for until the timeout.

// Binomial broadcasts over a binomial tree built from the target order.
type Binomial struct{}

// Name returns "binomial".
func (Binomial) Name() string { return "binomial" }

// Broadcast implements Structure.
func (Binomial) Broadcast(b *Broadcaster, origin cluster.NodeID, targets []cluster.NodeID, size int, done func(Result)) {
	t := newTracker(b, "binomial", len(targets), done)
	ids := append([]cluster.NodeID(nil), targets...)

	// relay(holder, lo, hi): holder (origin for the root call, otherwise
	// ids[lo-1]'s owner) is responsible for delivering ids[lo:hi). It
	// sends to the block's head, then splits: the head takes the upper
	// half, the holder keeps recursing on the lower half — the standard
	// binomial recursion.
	var relay func(holder cluster.NodeID, lo, hi int)
	relay = func(holder cluster.NodeID, lo, hi int) {
		if lo >= hi {
			return
		}
		head := ids[lo]
		sz := size + (hi-lo)*b.PerNodeListBytes
		b.send(holder, head, sz, &t.res, t.span, func(ok bool) {
			t.resolve(&t.res, head, ok)
			mid := lo + 1 + (hi-lo-1)/2
			if ok {
				d := b.relayDelay(head)
				b.Cluster.Node(head).Meter.ChargeCPU(d)
				b.engine().After(d, func() { relay(head, mid, hi) })
				relay(holder, lo+1, mid)
				return
			}
			// Fault tolerance: the holder keeps both halves.
			if hi-lo > 1 {
				b.engine().Tracer().Instant("comm.adopt", t.span,
					obs.Int("failed", int(head)), obs.Int("children", hi-lo-1))
			}
			relay(holder, mid, hi)
			relay(holder, lo+1, mid)
		})
	}
	relay(origin, 0, len(ids))
}
