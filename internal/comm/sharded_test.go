package comm

import (
	"testing"
	"time"

	"eslurm/internal/cluster"
)

// shardedCluster builds a 3-cell cluster: control on cell 0, computes
// striped across cells 1 and 2.
func shardedCluster(computes, workers int, seed int64, net cluster.NetConfig) *cluster.ShardedCluster {
	return cluster.NewSharded(cluster.ShardConfig{
		Computes:   computes,
		Satellites: 2,
		Net:        net,
		Cells:      3,
		CellOf: func(id cluster.NodeID, role cluster.Role) int {
			if role != cluster.RoleCompute {
				return 0
			}
			return 1 + int(id)%2
		},
		Workers: workers,
		Seed:    seed,
	})
}

func TestShardBroadcastStar(t *testing.T) {
	c := shardedCluster(16, 2, 5, cluster.NetConfig{})
	b := NewShardBroadcaster(c)
	var res Result
	got := false
	b.BroadcastStar(c.Master().ID, c.Computes(), 1024, func(r Result) { res, got = r, true })
	c.Group().RunUntil(time.Minute)
	if !got {
		t.Fatal("broadcast never finished")
	}
	if res.Delivered != 16 || len(res.Unreachable) != 0 {
		t.Fatalf("delivered=%d unreachable=%v, want 16/none", res.Delivered, res.Unreachable)
	}
	if res.Messages != 16 || res.Retries != 0 {
		t.Errorf("messages=%d retries=%d, want 16/0", res.Messages, res.Retries)
	}
	if res.DeliveredElapsed <= 0 || res.Elapsed < res.DeliveredElapsed {
		t.Errorf("elapsed=%v deliveredElapsed=%v inconsistent", res.Elapsed, res.DeliveredElapsed)
	}
	if n := b.OutstandingSends(); n != 0 {
		t.Errorf("outstanding sends = %d after drain, want 0", n)
	}
}

func TestShardBroadcastTreeAdoption(t *testing.T) {
	c := shardedCluster(30, 2, 9, cluster.NetConfig{})
	comps := c.Computes()
	// Fail the first relay (tree root) before the broadcast: its subtree
	// must be adopted by the origin and still delivered.
	c.ScheduleFail(comps[0], time.Millisecond, 0)
	b := NewShardBroadcaster(c)
	var res Result
	c.Group().Cell(0).Schedule(10*time.Millisecond, func() {
		b.BroadcastTree(c.Master().ID, comps, 1024, 5, func(r Result) { res = r })
	})
	c.Group().RunUntil(5 * time.Minute)
	if res.Delivered != 29 {
		t.Fatalf("delivered=%d, want 29 (all but the failed relay)", res.Delivered)
	}
	if len(res.Unreachable) != 1 || res.Unreachable[0] != comps[0] {
		t.Fatalf("unreachable=%v, want [%d]", res.Unreachable, comps[0])
	}
	if res.Retries == 0 {
		t.Error("no retries recorded against the failed relay")
	}
	if n := b.OutstandingSends(); n != 0 {
		t.Errorf("outstanding sends = %d after drain, want 0", n)
	}
}

// TestShardBroadcastWorkerInvariance pins digest and Result equality
// across worker counts under an adversarial network.
func TestShardBroadcastWorkerInvariance(t *testing.T) {
	run := func(workers int) (uint64, Result, string) {
		c := shardedCluster(24, workers, 13, cluster.NetConfig{LossProb: 0.05, DupProb: 0.05})
		c.Group().EnableDigest()
		comps := c.Computes()
		c.ScheduleFail(comps[7], 5*time.Millisecond, 0)
		b := NewShardBroadcaster(c)
		b.RecordResolved = true
		var res Result
		c.Group().Cell(0).Schedule(10*time.Millisecond, func() {
			b.BroadcastTree(c.Master().ID, comps, 2048, 4, func(r Result) { res = r })
		})
		c.Group().RunUntil(10 * time.Minute)
		var sb []byte
		if err := c.Group().MergedMetrics().WriteText(&byteWriter{&sb}); err != nil {
			t.Fatal(err)
		}
		return c.Group().Digest(), res, string(sb)
	}
	refD, refR, refM := run(1)
	if refR.Delivered == 0 {
		t.Fatal("reference run delivered nothing")
	}
	for _, w := range []int{2, 3, 8} {
		d, r, m := run(w)
		if d != refD {
			t.Errorf("workers=%d digest %#x, want %#x", w, d, refD)
		}
		if r.Delivered != refR.Delivered || r.Messages != refR.Messages ||
			r.Retries != refR.Retries || r.Elapsed != refR.Elapsed ||
			r.DeliveredElapsed != refR.DeliveredElapsed {
			t.Errorf("workers=%d result %+v, want %+v", w, r, refR)
		}
		if m != refM {
			t.Errorf("workers=%d merged metrics differ from reference", w)
		}
	}
}

type byteWriter struct{ buf *[]byte }

func (w *byteWriter) Write(p []byte) (int, error) {
	*w.buf = append(*w.buf, p...)
	return len(p), nil
}
