package comm

import (
	"sort"
	"testing"
	"time"

	"eslurm/internal/cluster"
	"eslurm/internal/simnet"
)

// Mid-broadcast failure coverage: nodes die while the payload is in
// flight, so the re-routing paths (ring skip, tree adoption, star/
// shared-mem direct timeouts, FP-Tree adoption) run against targets whose
// liveness changed after the broadcast started. The Result partition
// invariant must hold regardless of when the failure lands.

// assertPartition checks that Resolved ∪ Unreachable is an exact
// partition of targets and the counters agree with the identities.
func assertPartition(t *testing.T, name string, targets []cluster.NodeID, res Result) {
	t.Helper()
	if res.Delivered+len(res.Unreachable) != len(targets) {
		t.Errorf("%s: delivered %d + unreachable %d != targets %d",
			name, res.Delivered, len(res.Unreachable), len(targets))
	}
	if res.Delivered != len(res.Resolved) {
		t.Errorf("%s: Delivered %d != len(Resolved) %d", name, res.Delivered, len(res.Resolved))
	}
	all := append(append([]cluster.NodeID(nil), res.Resolved...), res.Unreachable...)
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	want := append([]cluster.NodeID(nil), targets...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if len(all) != len(want) {
		return // counter mismatch already reported
	}
	for i := range all {
		if all[i] != want[i] {
			t.Errorf("%s: resolution set is not an exact partition (rank %d: got %d want %d)",
				name, i, all[i], want[i])
			return
		}
	}
}

// healthyElapsed measures a structure's failure-free broadcast time so
// mid-broadcast failure times can be placed as fractions of it.
func healthyElapsed(computes int, s Structure) time.Duration {
	e := simnet.NewEngine(1)
	c := cluster.New(e, cluster.Config{Computes: computes, Satellites: 1})
	b := NewBroadcaster(c)
	var res Result
	s.Broadcast(b, c.Satellites()[0], c.Computes(), 512, func(r Result) { res = r })
	e.Run()
	return res.Elapsed
}

func TestMidBroadcastFailureAllStructures(t *testing.T) {
	const computes = 100
	failIdx := []int{3, 17, 42, 77, 95}
	for _, s := range structures() {
		span := healthyElapsed(computes, s)
		if span <= 0 {
			t.Fatalf("%s: no healthy elapsed", s.Name())
		}
		sawUnreachable := false
		for _, frac := range []float64{0.25, 0.5, 0.75} {
			failAt := time.Duration(float64(span) * frac)
			e := simnet.NewEngine(2)
			c := cluster.New(e, cluster.Config{Computes: computes, Satellites: 1})
			targets := c.Computes()
			for _, i := range failIdx {
				c.ScheduleFailure(targets[i], failAt, 0) // never recovers
			}
			b := NewBroadcaster(c)
			b.RecordResolved = true
			var res Result
			got := false
			s.Broadcast(b, c.Satellites()[0], targets, 512, func(r Result) { res = r; got = true })
			e.Run()
			if !got {
				t.Fatalf("%s: broadcast stalled with failures at %v (%.0f%% of %v)",
					s.Name(), failAt, frac*100, span)
			}
			assertPartition(t, s.Name(), targets, res)
			// Only the scheduled victims may be unreachable.
			victims := map[cluster.NodeID]bool{}
			for _, i := range failIdx {
				victims[targets[i]] = true
			}
			for _, id := range res.Unreachable {
				if !victims[id] {
					t.Errorf("%s: healthy node %d reported unreachable", s.Name(), id)
				}
			}
			if len(res.Unreachable) > 0 {
				sawUnreachable = true
			}
			if b.OutstandingSends() != 0 {
				t.Errorf("%s: %d sends outstanding after drain", s.Name(), b.OutstandingSends())
			}
		}
		if !sawUnreachable {
			t.Errorf("%s: no failure landed before delivery in the whole sweep; mid-broadcast path not exercised", s.Name())
		}
	}
}

// TestMidBroadcastGatherDegradedBookkeeping kills relay parents after the
// payload passed through them, so the children's upward aggregates hit a
// dead parent and must degrade to local bookkeeping. If that path were
// missing the gather would stall, and e.Run() would drain without
// completion.
func TestMidBroadcastGatherDegradedBookkeeping(t *testing.T) {
	const computes = 100
	g := GatherTree{Width: 8}
	span := healthyElapsed(computes, g)
	for _, frac := range []float64{0.3, 0.6, 0.9} {
		failAt := time.Duration(float64(span) * frac)
		e := simnet.NewEngine(3)
		c := cluster.New(e, cluster.Config{Computes: computes, Satellites: 1})
		targets := c.Computes()
		// The first `width` targets are the tree's interior spine under
		// ID-ordered lists; killing the first three guarantees dead
		// parents with live children.
		for _, i := range []int{0, 1, 2} {
			c.ScheduleFailure(targets[i], failAt, 0)
		}
		b := NewBroadcaster(c)
		b.RecordResolved = true
		var res GatherResult
		got := false
		g.BroadcastGather(b, c.Satellites()[0], targets, 512, func(r GatherResult) { res = r; got = true })
		e.Run()
		if !got {
			t.Fatalf("gather stalled with parents dying at %.0f%% of %v", frac*100, span)
		}
		assertPartition(t, "gathertree", targets, res.Result)
		if res.AggregatedAt != res.Elapsed {
			t.Errorf("AggregatedAt %v != Elapsed %v", res.AggregatedAt, res.Elapsed)
		}
	}
}

// TestDeliveryIdempotentUnderDuplication floods the network with
// duplicates and checks Delivered never double-counts a target.
func TestDeliveryIdempotentUnderDuplication(t *testing.T) {
	for _, s := range structures() {
		e := simnet.NewEngine(4)
		c := cluster.New(e, cluster.Config{
			Computes: 80, Satellites: 1,
			Net: cluster.NetConfig{DupProb: 0.5},
		})
		b := NewBroadcaster(c)
		b.RecordResolved = true
		var res Result
		got := false
		s.Broadcast(b, c.Satellites()[0], c.Computes(), 512, func(r Result) { res = r; got = true })
		e.Run()
		if !got {
			t.Fatalf("%s: stalled under duplication", s.Name())
		}
		if res.Delivered != 80 {
			t.Errorf("%s: delivered %d/80 under 50%% duplication", s.Name(), res.Delivered)
		}
		assertPartition(t, s.Name(), c.Computes(), res)
	}
}

// TestLossRetriesStillPartition cranks message loss with a backoff retry
// policy: whatever the loss pattern, the partition invariant must hold
// and every send slot must be returned.
func TestLossRetriesStillPartition(t *testing.T) {
	for _, s := range structures() {
		e := simnet.NewEngine(5)
		c := cluster.New(e, cluster.Config{
			Computes: 80, Satellites: 1,
			Net: cluster.NetConfig{LossProb: 0.2},
		})
		b := NewBroadcaster(c)
		b.RecordResolved = true
		b.Retry = &RetryPolicy{MaxAttempts: 5, Backoff: 20 * time.Millisecond, JitterFrac: 0.5}
		var res Result
		got := false
		s.Broadcast(b, c.Satellites()[0], c.Computes(), 512, func(r Result) { res = r; got = true })
		e.Run()
		if !got {
			t.Fatalf("%s: stalled under loss", s.Name())
		}
		assertPartition(t, s.Name(), c.Computes(), res)
		if res.Delivered == 0 {
			t.Errorf("%s: nothing delivered under 20%% loss with retries", s.Name())
		}
		if b.OutstandingSends() != 0 {
			t.Errorf("%s: %d slots leaked", s.Name(), b.OutstandingSends())
		}
	}
}

// TestRetryPolicyBackoffAndDeadline pins the policy arithmetic: the
// backoff sequence grows exponentially to the cap, and the deadline stops
// a chain early.
func TestRetryPolicyBackoffAndDeadline(t *testing.T) {
	p := &RetryPolicy{MaxAttempts: 6, Backoff: 100 * time.Millisecond, MaxBackoff: 500 * time.Millisecond}
	wants := []time.Duration{
		100 * time.Millisecond, // before attempt 2
		200 * time.Millisecond, // 3
		400 * time.Millisecond, // 4
		500 * time.Millisecond, // 5 (capped)
		500 * time.Millisecond, // 6 (capped)
	}
	for i, want := range wants {
		if got := p.backoff(i + 2); got != want {
			t.Errorf("backoff(%d) = %v, want %v", i+2, got, want)
		}
	}

	// A dead target with a generous attempt budget but a tight deadline:
	// the chain must give up at the deadline, not run out the attempts.
	e := simnet.NewEngine(6)
	c := cluster.New(e, cluster.Config{Computes: 4, Satellites: 1})
	c.Fail(c.Computes()[0])
	b := NewBroadcaster(c)
	b.Retry = &RetryPolicy{MaxAttempts: 100, Backoff: time.Second, Deadline: 3 * time.Second}
	okSeen := false
	var resolvedAt time.Duration
	b.Send(c.Satellites()[0], c.Computes()[0], 64, func(ok bool) {
		okSeen = true
		if ok {
			t.Error("delivery to a dead node reported ok")
		}
		resolvedAt = e.Now()
	})
	e.Run()
	if !okSeen {
		t.Fatal("send never resolved")
	}
	if resolvedAt > 10*time.Second {
		t.Errorf("deadline did not bound the chain: resolved at %v", resolvedAt)
	}

	// Same-seed reruns of a lossy retry broadcast are bit-identical in
	// their retry counts (deterministic jitter).
	run := func() int {
		e := simnet.NewEngine(7)
		c := cluster.New(e, cluster.Config{
			Computes: 60, Satellites: 1,
			Net: cluster.NetConfig{LossProb: 0.3},
		})
		b := NewBroadcaster(c)
		b.Retry = &RetryPolicy{MaxAttempts: 6, Backoff: 10 * time.Millisecond, JitterFrac: 1.0}
		var res Result
		Star{}.Broadcast(b, c.Satellites()[0], c.Computes(), 256, func(r Result) { res = r })
		e.Run()
		return res.Retries
	}
	if a, b2 := run(), run(); a != b2 {
		t.Errorf("retry counts differ across same-seed runs: %d vs %d", a, b2)
	}
}

// TestRetryDeadlineExpiresMidBackoff pins the deadline-vs-backoff
// interaction: when the Deadline elapses while the chain is parked in a
// backoff wait, the wake-up must resolve the send exactly once as failed —
// no attempt may launch past the deadline, and no late duplicate
// resolution may follow.
func TestRetryDeadlineExpiresMidBackoff(t *testing.T) {
	e := simnet.NewEngine(8)
	c := cluster.New(e, cluster.Config{Computes: 4, Satellites: 1})
	dead := c.Computes()[0]
	c.Fail(dead)
	b := NewBroadcaster(c)
	// First attempt fails around the connect timeout (~1s); the 10s
	// backoff then straddles the 3s deadline, so the deadline expires
	// mid-backoff with 98 attempts still in budget.
	b.Retry = &RetryPolicy{MaxAttempts: 100, Backoff: 10 * time.Second, Deadline: 3 * time.Second}
	var resolutions []bool
	var resolvedAt time.Duration
	b.Send(c.Satellites()[0], dead, 64, func(ok bool) {
		resolutions = append(resolutions, ok)
		resolvedAt = e.Now()
	})
	e.Run()
	if len(resolutions) != 1 || resolutions[0] {
		t.Fatalf("resolutions = %v, want exactly one failed resolution", resolutions)
	}
	// Exactly one attempt went on the wire: the backoff wake-up saw the
	// expired deadline and settled instead of retrying.
	if got := e.Metrics().Counter("comm.messages").Value(); got != 1 {
		t.Errorf("comm.messages = %d, want 1 (no attempt after the deadline)", got)
	}
	// The chain resolved at the backoff wake-up, bounded well below a
	// second attempt's own timeout.
	if resolvedAt > 12*time.Second {
		t.Errorf("resolved at %v; expected at the first backoff wake-up", resolvedAt)
	}
	if b.OutstandingSends() != 0 {
		t.Errorf("%d sends outstanding after drain", b.OutstandingSends())
	}
}
