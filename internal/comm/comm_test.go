package comm

import (
	"testing"
	"time"

	"eslurm/internal/cluster"
	"eslurm/internal/predict"
	"eslurm/internal/simnet"
)

// runBroadcast drives a structure synchronously and returns the result.
func runBroadcast(t *testing.T, seed int64, computes int, failed []int, s Structure, pred predict.Predictor) Result {
	t.Helper()
	e := simnet.NewEngine(seed)
	c := cluster.New(e, cluster.Config{Computes: computes, Satellites: 1})
	targets := c.Computes()
	for _, i := range failed {
		c.Fail(targets[i])
	}
	if fp, ok := s.(FPTree); ok && pred != nil {
		fp.Predictor = pred
		s = fp
	}
	b := NewBroadcaster(c)
	var res Result
	got := false
	s.Broadcast(b, c.Satellites()[0], targets, 512, func(r Result) { res = r; got = true })
	e.Run()
	if !got {
		t.Fatalf("%s: broadcast never completed", s.Name())
	}
	return res
}

func structures() []Structure {
	return []Structure{Ring{}, Star{}, SharedMem{}, KTree{Width: 8}, FPTree{Width: 8}}
}

func TestAllStructuresDeliverToHealthyCluster(t *testing.T) {
	for _, s := range structures() {
		res := runBroadcast(t, 1, 100, nil, s, nil)
		if res.Delivered != 100 {
			t.Errorf("%s: delivered %d/100", s.Name(), res.Delivered)
		}
		if len(res.Unreachable) != 0 {
			t.Errorf("%s: unreachable = %v", s.Name(), res.Unreachable)
		}
		if res.Elapsed <= 0 || res.DeliveredElapsed <= 0 {
			t.Errorf("%s: nonpositive elapsed", s.Name())
		}
		if res.DeliveredElapsed > res.Elapsed {
			t.Errorf("%s: DeliveredElapsed %v > Elapsed %v", s.Name(), res.DeliveredElapsed, res.Elapsed)
		}
	}
}

func TestAllStructuresHandleFailures(t *testing.T) {
	failed := []int{3, 17, 42, 77}
	for _, s := range structures() {
		res := runBroadcast(t, 2, 100, failed, s, nil)
		if res.Delivered != 96 {
			t.Errorf("%s: delivered %d/96 healthy", s.Name(), res.Delivered)
		}
		if len(res.Unreachable) != 4 {
			t.Errorf("%s: unreachable = %d, want 4", s.Name(), len(res.Unreachable))
		}
	}
}

func TestEmptyTargets(t *testing.T) {
	for _, s := range structures() {
		res := runBroadcast(t, 3, 0, nil, s, nil)
		// With zero compute nodes targets is empty; completion must still
		// fire with a zero result.
		if res.Delivered != 0 || len(res.Unreachable) != 0 {
			t.Errorf("%s: nonzero result on empty targets", s.Name())
		}
	}
}

func TestSingleTarget(t *testing.T) {
	for _, s := range structures() {
		res := runBroadcast(t, 4, 1, nil, s, nil)
		if res.Delivered != 1 {
			t.Errorf("%s: single target not delivered", s.Name())
		}
	}
}

func TestRetriesCountedOnFailure(t *testing.T) {
	res := runBroadcast(t, 5, 10, []int{0}, Star{}, nil)
	if res.Retries != 2 { // 3 attempts = 2 retries for the one dead node
		t.Errorf("retries = %d, want 2", res.Retries)
	}
	if res.Messages != 9+3 {
		t.Errorf("messages = %d, want 12", res.Messages)
	}
}

func TestRingSlowerThanTree(t *testing.T) {
	ring := runBroadcast(t, 6, 500, nil, Ring{}, nil)
	tree := runBroadcast(t, 6, 500, nil, KTree{Width: 8}, nil)
	if ring.DeliveredElapsed <= tree.DeliveredElapsed {
		t.Errorf("ring (%v) should be slower than tree (%v) on 500 nodes",
			ring.DeliveredElapsed, tree.DeliveredElapsed)
	}
}

func TestTreeDegradesWithInteriorFailures(t *testing.T) {
	// Fail the first node: in list order it heads the first group and has
	// many descendants, so the plain tree pays timeout + adoption.
	clean := runBroadcast(t, 7, 512, nil, KTree{Width: 8}, nil)
	dirty := runBroadcast(t, 7, 512, []int{0}, KTree{Width: 8}, nil)
	if dirty.DeliveredElapsed < clean.DeliveredElapsed+500*time.Millisecond {
		t.Errorf("interior failure did not slow the tree: clean %v dirty %v",
			clean.DeliveredElapsed, dirty.DeliveredElapsed)
	}
}

func TestFPTreeShieldsPredictedFailures(t *testing.T) {
	// Same failure, but the predictor knows: FP-Tree moves it to a leaf
	// and healthy nodes are unaffected.
	e := simnet.NewEngine(8)
	c := cluster.New(e, cluster.Config{Computes: 512, Satellites: 1})
	targets := c.Computes()
	bad := targets[0]
	c.Fail(bad)
	pred := predict.Static{bad: true}

	b := NewBroadcaster(c)
	var fp Result
	FPTree{Width: 8, Predictor: pred}.Broadcast(b, c.Satellites()[0], targets, 512, func(r Result) { fp = r })
	e.Run()

	plain := runBroadcast(t, 8, 512, []int{0}, KTree{Width: 8}, nil)
	if fp.DeliveredElapsed >= plain.DeliveredElapsed {
		t.Errorf("FP-Tree (%v) not faster than plain tree (%v) with predicted interior failure",
			fp.DeliveredElapsed, plain.DeliveredElapsed)
	}
	// With the failure at a leaf, healthy delivery should be close to the
	// clean-tree time: no healthy node waits on a timeout.
	clean := runBroadcast(t, 8, 512, nil, KTree{Width: 8}, nil)
	if fp.DeliveredElapsed > clean.DeliveredElapsed*3 {
		t.Errorf("FP-Tree healthy delivery %v far above clean tree %v",
			fp.DeliveredElapsed, clean.DeliveredElapsed)
	}
}

func TestFPTreeWithNilPredictorEqualsPlainTree(t *testing.T) {
	fp := runBroadcast(t, 9, 300, nil, FPTree{Width: 8}, nil)
	tr := runBroadcast(t, 9, 300, nil, KTree{Width: 8}, nil)
	if fp.Delivered != tr.Delivered || fp.Messages != tr.Messages {
		t.Errorf("nil-predictor FP-Tree diverges from plain tree: %+v vs %+v", fp, tr)
	}
}

func TestPlacementStats(t *testing.T) {
	e := simnet.NewEngine(10)
	c := cluster.New(e, cluster.Config{Computes: 200, Satellites: 1})
	targets := c.Computes()
	// Fail 10 nodes; predict 8 of them (80% recall).
	pred := predict.Static{}
	for i := 0; i < 10; i++ {
		c.Fail(targets[i*13])
		if i < 8 {
			pred[targets[i*13]] = true
		}
	}
	stats := &PlacementStats{}
	b := NewBroadcaster(c)
	done := false
	FPTree{Width: 8, Predictor: pred, Stats: stats}.Broadcast(b, c.Satellites()[0], targets, 64, func(Result) { done = true })
	e.Run()
	if !done {
		t.Fatal("broadcast incomplete")
	}
	if stats.TreesBuilt != 1 || stats.NodesTotal != 200 {
		t.Errorf("stats header wrong: %+v", stats)
	}
	if stats.FailedEncountered != 10 {
		t.Errorf("FailedEncountered = %d, want 10", stats.FailedEncountered)
	}
	if stats.FailedAtLeaves < 8 {
		t.Errorf("FailedAtLeaves = %d, want >= 8 (all predicted ones)", stats.FailedAtLeaves)
	}
	if r := stats.LeafPlacementRatio(); r < 0.8 || r > 1.0 {
		t.Errorf("LeafPlacementRatio = %v", r)
	}
}

func TestPlacementRatioZeroWhenNoFailures(t *testing.T) {
	var s PlacementStats
	if s.LeafPlacementRatio() != 0 {
		t.Error("ratio must be 0 with no failures encountered")
	}
}

func TestSharedMemFlatUnderFailures(t *testing.T) {
	clean := runBroadcast(t, 11, 400, nil, SharedMem{}, nil)
	var failed []int
	for i := 0; i < 120; i++ { // 30% failure
		failed = append(failed, i*3)
	}
	dirty := runBroadcast(t, 11, 400, failed, SharedMem{}, nil)
	// Healthy delivery time must not grow under failures (it shrinks:
	// fewer fetches).
	if dirty.DeliveredElapsed > clean.DeliveredElapsed {
		t.Errorf("sharedmem degraded under failures: clean %v dirty %v",
			clean.DeliveredElapsed, dirty.DeliveredElapsed)
	}
}

func TestStarLimitedByConcurrency(t *testing.T) {
	e := simnet.NewEngine(12)
	c := cluster.New(e, cluster.Config{Computes: 300, Satellites: 1})
	b := NewBroadcaster(c)
	b.MaxConcurrent = 4
	var res Result
	Star{}.Broadcast(b, c.Satellites()[0], c.Computes(), 64, func(r Result) { res = r })
	e.Run()
	if res.Delivered != 300 {
		t.Fatalf("delivered %d", res.Delivered)
	}
	// Origin can never exceed 4 concurrent sockets.
	if peak := c.Node(c.Satellites()[0]).Meter.PeakSockets(); peak > 4 {
		t.Errorf("peak sockets %d > MaxConcurrent 4", peak)
	}
}

func TestTrackerResolvesExactlyOncePerTarget(t *testing.T) {
	// Nested failures: fail an interior node AND one of its adopted
	// children; every target must still resolve exactly once.
	res := runBroadcast(t, 13, 64, []int{0, 1, 2}, KTree{Width: 4}, nil)
	if res.Delivered+len(res.Unreachable) != 64 {
		t.Fatalf("resolutions = %d, want 64", res.Delivered+len(res.Unreachable))
	}
}

func TestBroadcastTimeGrowsWithFailureRatioForTree(t *testing.T) {
	// Coarse shape check backing Fig. 8b: plain tree latency grows with
	// the failure ratio.
	times := make([]time.Duration, 0, 3)
	for _, ratio := range []float64{0, 0.1, 0.3} {
		n := 512
		count := int(float64(n) * ratio)
		var failed []int
		if count > 0 {
			stride := n / count
			for i := 0; i < count; i++ {
				failed = append(failed, i*stride) // scattered across the list
			}
		}
		res := runBroadcast(t, 14, n, failed, KTree{Width: 8}, nil)
		times = append(times, res.DeliveredElapsed)
	}
	if !(times[0] < times[1] && times[1] <= times[2]) {
		t.Errorf("tree broadcast time not increasing with failure ratio: %v", times)
	}
}

func TestBroadcasterPublicSend(t *testing.T) {
	e := simnet.NewEngine(20)
	c := cluster.New(e, cluster.Config{Computes: 2, Satellites: 0})
	b := NewBroadcaster(c)
	a, d := c.Computes()[0], c.Computes()[1]
	ok := false
	b.Send(a, d, 128, func(delivered bool) { ok = delivered })
	e.Run()
	if !ok {
		t.Fatal("public Send failed on healthy pair")
	}
	// To a failed node: all retries exhausted, cb(false).
	c.Fail(d)
	got := true
	b.Send(a, d, 128, func(delivered bool) { got = delivered })
	e.Run()
	if got {
		t.Fatal("Send to failed node reported success")
	}
}

func TestBinomialDeliversAll(t *testing.T) {
	res := runBroadcast(t, 21, 300, nil, Binomial{}, nil)
	if res.Delivered != 300 || len(res.Unreachable) != 0 {
		t.Fatalf("binomial delivered %d, unreachable %d", res.Delivered, len(res.Unreachable))
	}
	if res.Messages != 300 {
		t.Errorf("binomial messages = %d, want exactly n", res.Messages)
	}
}

func TestBinomialHandlesFailures(t *testing.T) {
	res := runBroadcast(t, 22, 200, []int{0, 64, 150}, Binomial{}, nil)
	if res.Delivered+len(res.Unreachable) != 200 {
		t.Fatal("binomial lost resolutions under failures")
	}
	if len(res.Unreachable) != 3 {
		t.Errorf("unreachable = %d", len(res.Unreachable))
	}
}

func TestBinomialLogDepthLatency(t *testing.T) {
	// Healthy binomial delivery is O(log n) rounds: far faster than ring,
	// within a small factor of the k-ary tree.
	bin := runBroadcast(t, 23, 1024, nil, Binomial{}, nil)
	ring := runBroadcast(t, 23, 1024, nil, Ring{}, nil)
	if bin.DeliveredElapsed*10 > ring.DeliveredElapsed {
		t.Errorf("binomial (%v) not ~10x faster than ring (%v)", bin.DeliveredElapsed, ring.DeliveredElapsed)
	}
}
