package comm

import (
	"time"

	"eslurm/internal/cluster"
	"eslurm/internal/fptree"
	"eslurm/internal/obs"
)

// ShardBroadcaster is the broadcast layer over a sharded cluster: the
// star and k-ary-tree structures with the same retry and parent-adoption
// fault tolerance as Broadcaster, rebuilt on the split-callback wire
// contract a multi-cell simulation imposes.
//
// What changes versus the single-engine Broadcaster:
//
//   - Acknowledgement latency is modelled, not elided. A sender learns of
//     a delivery one link latency after it happens (ShardedCluster's
//     onAcked), and a relay's resolution reaches the origin's tracker one
//     more latency later — so Delivered/Elapsed include the ack traffic a
//     real RM master actually waits for.
//   - All per-sender state (connection-slot limiters, retry chains) lives
//     on the sender's cell; all tracker state lives on the origin's cell;
//     instruments are per-cell registries folded by MergedMetrics. No
//     state is shared across cells — notifications ride the shard group's
//     deterministic cross-cell channel.
//   - Tracing spans land on the tracer of the cell executing the
//     instrumented code (spans are worker-count-invariant because the
//     per-cell event streams are). A span whose logical parent lives on
//     another cell's tracer records the "xparent" attribute
//     (obs.CellRef) instead of a parent id; critpath.FromCells resolves
//     those hand-offs when flattening the per-cell recordings into one
//     DAG. Span names and semantics match the single-engine
//     Broadcaster: comm.broadcast, comm.send, comm.retry, comm.adopt,
//     fptree.build.
type ShardBroadcaster struct {
	C *cluster.ShardedCluster
	// Retries is the number of connection attempts per link (paper: 3),
	// retried immediately.
	Retries int
	// SendOverhead is the sender-side dispatch cost per message.
	SendOverhead time.Duration
	// RelayOverhead is the receiver-side cost before a relay forwards.
	RelayOverhead time.Duration
	// MaxConcurrent caps simultaneous outstanding connections per sender.
	MaxConcurrent int
	// PerNodeListBytes is the wire overhead per participant carried in
	// relay messages.
	PerNodeListBytes int
	// RecordResolved makes every Result carry delivered identities.
	RecordResolved bool
	// OnResolve, when non-nil, fires exactly once per (broadcast, target)
	// on the origin's cell at the instant the target resolves.
	OnResolve func(to cluster.NodeID, ok bool)
	// SpanParent / SpanParentCell, when SpanParent is non-zero, parent
	// the next broadcast's root span (the sharded analogue of
	// Broadcaster.SpanParent: the caller sets them immediately before a
	// Broadcast* call, and the tracker consumes and clears them). The
	// parent span must live on SpanParentCell's tracer.
	SpanParent     obs.SpanID
	SpanParentCell int

	// Per-cell state, indexed by cell: each entry is touched only by that
	// cell's events (or the idle coordinator).
	limiters []map[cluster.NodeID]*limiter
	ins      []*instruments
}

// spanRef locates a span across cells: the tracer that recorded it
// (cell) and its id there. The zero ref means "no parent".
type spanRef struct {
	cell int
	id   obs.SpanID
}

// startSpan opens a span on cell's tracer under the given cross-cell
// parent: same-cell parents link directly; remote ones ride the
// "xparent" attribute. Nil-tracer cells record nothing (returns 0).
func (b *ShardBroadcaster) startSpan(name string, cell int, parent spanRef, attrs ...obs.Attr) obs.SpanID {
	tr := b.C.Group().Cell(cell).Tracer()
	if tr == nil {
		return 0
	}
	if parent.id != 0 && parent.cell != cell {
		attrs = append([]obs.Attr{obs.String("xparent", obs.CellRef(parent.cell, parent.id))}, attrs...)
		return tr.Start(name, 0, attrs...)
	}
	return tr.Start(name, parent.id, attrs...)
}

// instantSpan records an instant on cell's tracer under the cross-cell
// parent, with the same hand-off rule as startSpan.
func (b *ShardBroadcaster) instantSpan(name string, cell int, parent spanRef, attrs ...obs.Attr) {
	tr := b.C.Group().Cell(cell).Tracer()
	if tr == nil {
		return
	}
	if parent.id != 0 && parent.cell != cell {
		attrs = append([]obs.Attr{obs.String("xparent", obs.CellRef(parent.cell, parent.id))}, attrs...)
		tr.Instant(name, 0, attrs...)
		return
	}
	tr.Instant(name, parent.id, attrs...)
}

// NewShardBroadcaster returns a ShardBroadcaster with the paper's
// defaults, its per-cell limiter maps and instruments built eagerly on
// the calling goroutine.
func NewShardBroadcaster(c *cluster.ShardedCluster) *ShardBroadcaster {
	cells := c.Group().Cells()
	b := &ShardBroadcaster{
		C:                c,
		Retries:          3,
		SendOverhead:     30 * time.Microsecond,
		RelayOverhead:    200 * time.Microsecond,
		MaxConcurrent:    128,
		PerNodeListBytes: 16,
		limiters:         make([]map[cluster.NodeID]*limiter, cells),
		ins:              make([]*instruments, cells),
	}
	for i := 0; i < cells; i++ {
		b.limiters[i] = make(map[cluster.NodeID]*limiter)
		m := c.Group().Cell(i).Metrics()
		b.ins[i] = &instruments{
			delivered:   m.Counter("comm.delivered"),
			unreachable: m.Counter("comm.unreachable"),
			messages:    m.Counter("comm.messages"),
			retries:     m.Counter("comm.retries"),
			outstanding: m.Gauge("comm.outstanding_sends"),
			elapsed:     m.Histogram("comm.broadcast_elapsed_ns", broadcastElapsedBounds()),
		}
	}
	return b
}

func (b *ShardBroadcaster) limiter(id cluster.NodeID) *limiter {
	cell := b.C.CellOf(id)
	l, ok := b.limiters[cell][id]
	if !ok {
		l = &limiter{max: b.MaxConcurrent}
		b.limiters[cell][id] = l
	}
	return l
}

// OutstandingSends returns the in-flight delivery-chain count summed
// across cells. Idle-only: call between RunUntil phases (the chaos
// harness's drain invariant).
func (b *ShardBroadcaster) OutstandingSends() int {
	n := 0
	for _, in := range b.ins {
		n += int(in.outstanding.Value())
	}
	return n
}

// send runs one delivery chain from -> to with retries, on from's cell.
// onArrive (may be nil) runs on to's cell at the first payload arrival
// (duplicates are deduplicated here, so relays forward once). onResolved
// runs on from's cell exactly once with the outcome and the chain's
// message/retry counts.
func (b *ShardBroadcaster) send(from, to cluster.NodeID, size int, parent spanRef, onArrive func(), onResolved func(ok bool, msgs, retries int)) {
	e := b.C.Engine(from)
	fromCell := b.C.CellOf(from)
	in := b.ins[fromCell]
	lim := b.limiter(from)
	in.outstanding.Add(1)
	tr := e.Tracer()
	span := b.startSpan("comm.send", fromCell, parent, obs.Int("from", int(from)), obs.Int("to", int(to)))
	lim.acquire(func() {
		attempts, msgs, retries := 0, 0, 0
		resolved := false
		arrived := false // touched only on to's cell
		settle := func(ok bool) {
			resolved = true
			in.outstanding.Add(-1)
			tr.SetAttrInt(span, "attempts", attempts)
			if !ok {
				tr.SetAttr(span, "ok", "false")
			}
			tr.End(span)
			lim.release()
			onResolved(ok, msgs, retries)
		}
		var attempt func()
		attempt = func() {
			attempts++
			msgs++
			in.messages.Inc()
			if attempts > 1 {
				retries++
				in.retries.Inc()
				tr.Instant("comm.retry", span, obs.Int("attempt", attempts))
			}
			b.C.Node(from).Meter.ChargeCPU(b.SendOverhead)
			e.After(b.SendOverhead, func() {
				b.C.Send(from, to, size,
					func() { // payload arrival, to's cell
						if arrived {
							return
						}
						arrived = true
						if onArrive != nil {
							onArrive()
						}
					},
					func() { // ack, from's cell
						if resolved {
							return
						}
						settle(true)
					},
					func() { // attempt failed, from's cell
						if resolved {
							return
						}
						if attempts < b.Retries {
							attempt()
							return
						}
						settle(false)
					})
			})
		}
		attempt()
	})
}

// SendOne delivers one point-to-point message with the broadcaster's
// retry policy, outside any broadcast. cb (may be nil) runs on from's
// cell with true on acknowledged delivery.
func (b *ShardBroadcaster) SendOne(from, to cluster.NodeID, size int, cb func(ok bool)) {
	parent := spanRef{cell: b.SpanParentCell, id: b.SpanParent}
	b.SpanParent, b.SpanParentCell = 0, 0
	b.send(from, to, size, parent, nil, func(ok bool, _, _ int) {
		if cb != nil {
			cb(ok)
		}
	})
}

// shardTracker finalizes one broadcast's Result on the origin's cell.
// It owns the broadcast's comm.broadcast span, recorded on the origin
// cell's tracer.
type shardTracker struct {
	b       *ShardBroadcaster
	origin  cluster.NodeID
	start   time.Duration
	pending int
	res     Result
	done    func(Result)
	span    obs.SpanID
}

// ref returns the tracker's broadcast span as a cross-cell reference for
// parenting spans recorded on other cells.
func (t *shardTracker) ref() spanRef {
	return spanRef{cell: t.b.C.CellOf(t.origin), id: t.span}
}

func (b *ShardBroadcaster) newTracker(origin cluster.NodeID, structure string, pending int, done func(Result)) *shardTracker {
	t := &shardTracker{b: b, origin: origin, start: b.C.Engine(origin).Now(), pending: pending, done: done}
	parent := spanRef{cell: b.SpanParentCell, id: b.SpanParent}
	b.SpanParent, b.SpanParentCell = 0, 0
	t.span = b.startSpan("comm.broadcast", b.C.CellOf(origin), parent,
		obs.String("structure", structure), obs.Int("targets", pending))
	if pending == 0 {
		t.finish()
	}
	return t
}

func (t *shardTracker) resolve(id cluster.NodeID, ok bool, msgs, retries int) {
	in := t.b.ins[t.b.C.CellOf(t.origin)]
	if t.b.OnResolve != nil {
		t.b.OnResolve(id, ok)
	}
	t.res.Messages += msgs
	t.res.Retries += retries
	if ok {
		t.res.Delivered++
		in.delivered.Inc()
		if t.b.RecordResolved {
			t.res.Resolved = append(t.res.Resolved, id)
		}
		if d := t.b.C.Engine(t.origin).Now() - t.start; d > t.res.DeliveredElapsed {
			t.res.DeliveredElapsed = d
		}
	} else {
		t.res.Unreachable = append(t.res.Unreachable, id)
		in.unreachable.Inc()
	}
	t.pending--
	if t.pending == 0 {
		t.finish()
	}
}

func (t *shardTracker) finish() {
	t.res.Elapsed = t.b.C.Engine(t.origin).Now() - t.start
	t.b.ins[t.b.C.CellOf(t.origin)].elapsed.Observe(int64(t.res.Elapsed))
	if tr := t.b.C.Engine(t.origin).Tracer(); tr != nil {
		tr.SetAttrInt(t.span, "delivered", t.res.Delivered)
		tr.SetAttrInt(t.span, "unreachable", len(t.res.Unreachable))
		tr.End(t.span)
	}
	if t.done != nil {
		t.done(t.res)
	}
}

// notifyResolve routes one link's outcome from the sender's cell to the
// origin's tracker. Same-cell senders resolve synchronously; remote
// senders' outcomes ride the deterministic cross-cell channel one link
// latency later — the notification leg of the ack traffic.
func (b *ShardBroadcaster) notifyResolve(t *shardTracker, sender, id cluster.NodeID, ok bool, msgs, retries int) {
	senderCell, originCell := b.C.CellOf(sender), b.C.CellOf(t.origin)
	if senderCell == originCell {
		t.resolve(id, ok, msgs, retries)
		return
	}
	at := b.C.Engine(sender).Now() + b.C.Config().Latency
	b.C.Group().Send(senderCell, originCell, at, func() {
		t.resolve(id, ok, msgs, retries)
	})
}

// BroadcastStar delivers size payload bytes from origin directly to
// every target, bounded by the origin's MaxConcurrent slots. done (may
// be nil) runs on the origin's cell exactly once.
func (b *ShardBroadcaster) BroadcastStar(origin cluster.NodeID, targets []cluster.NodeID, size int, done func(Result)) {
	t := b.newTracker(origin, "star", len(targets), done)
	for _, id := range targets {
		id := id
		b.send(origin, id, size, t.ref(), nil, func(ok bool, msgs, retries int) {
			b.notifyResolve(t, origin, id, ok, msgs, retries)
		})
	}
}

// BroadcastTree delivers over a width-w relay tree built from the target
// list order, with parent adoption on relay failure: when a relay is
// unreachable after retries, its sender contacts the orphaned children
// directly. The tree is built once on the origin's cell and shared
// read-only across cells; every mutation (tracker, limiters, meters)
// stays on the cell that owns it. width <= 0 takes fptree.DefaultWidth.
func (b *ShardBroadcaster) BroadcastTree(origin cluster.NodeID, targets []cluster.NodeID, size int, width int, done func(Result)) {
	if width <= 0 {
		width = fptree.DefaultWidth
	}
	// The build span is a sibling of the broadcast span, like the
	// single-engine KTree: both parent under the caller's SpanParent.
	buildParent := spanRef{cell: b.SpanParentCell, id: b.SpanParent}
	span := b.startSpan("fptree.build", b.C.CellOf(origin), buildParent,
		obs.Int("targets", len(targets)), obs.Int("width", width))
	tr := fptree.Build(append([]cluster.NodeID(nil), targets...), width)
	b.C.Engine(origin).Tracer().End(span)
	t := b.newTracker(origin, "tree", tr.Size(), done)
	b.dispatchTree(t, origin, tr.Roots, size)
}

// dispatchTree sends to each subtree root from `from`, on from's cell.
func (b *ShardBroadcaster) dispatchTree(t *shardTracker, from cluster.NodeID, nodes []*fptree.Node[cluster.NodeID], size int) {
	for _, n := range nodes {
		n := n
		sz := size + subtreeCount(n)*b.PerNodeListBytes
		b.send(from, n.Value, sz, t.ref(),
			func() { // payload at the relay: forward to children
				if len(n.Children) == 0 {
					return
				}
				d := b.RelayOverhead
				if g := b.C.GrayFactorOn(n.Value, n.Value); g > 1 {
					d = time.Duration(float64(d) * g)
				}
				b.C.Node(n.Value).Meter.ChargeCPU(d)
				b.C.Engine(n.Value).After(d, func() {
					b.dispatchTree(t, n.Value, n.Children, size)
				})
			},
			func(ok bool, msgs, retries int) { // outcome at the sender
				b.notifyResolve(t, from, n.Value, ok, msgs, retries)
				if !ok {
					// Parent adoption: contact the orphaned children
					// directly from this sender.
					if len(n.Children) > 0 {
						b.instantSpan("comm.adopt", b.C.CellOf(from), t.ref(),
							obs.Int("failed", int(n.Value)), obs.Int("children", len(n.Children)))
					}
					b.dispatchTree(t, from, n.Children, size)
				}
			})
	}
}

// BroadcastRelayed delivers through a two-level structure: origin hands
// contiguous target groups to relay nodes (ESlurm's satellites), each
// relay pays RelayOverhead and tree-broadcasts its group at the given
// width. A relay that is unreachable after retries is routed around:
// the origin broadcasts that relay's group directly (the sharded
// simplification of core.Master's satellite reallocation). Relays are
// conduits, not targets — Result counts target deliveries only. done
// (may be nil) runs on the origin's cell exactly once.
func (b *ShardBroadcaster) BroadcastRelayed(origin cluster.NodeID, relays, targets []cluster.NodeID, size, width int, done func(Result)) {
	if len(relays) == 0 {
		b.BroadcastTree(origin, targets, size, width, done)
		return
	}
	if width <= 0 {
		width = fptree.DefaultWidth
	}
	t := b.newTracker(origin, "relayed", len(targets), done)
	per := (len(targets) + len(relays) - 1) / len(relays)
	for i, relay := range relays {
		lo := i * per
		if lo >= len(targets) {
			break
		}
		hi := lo + per
		if hi > len(targets) {
			hi = len(targets)
		}
		relay, group := relay, targets[lo:hi]
		span := b.startSpan("fptree.build", b.C.CellOf(origin), t.ref(),
			obs.Int("targets", len(group)), obs.Int("width", width))
		tr := fptree.Build(append([]cluster.NodeID(nil), group...), width)
		b.C.Engine(origin).Tracer().End(span)
		taskSz := size + len(group)*b.PerNodeListBytes
		b.send(origin, relay, taskSz, t.ref(),
			func() { // task at the relay: fan the group out
				d := b.RelayOverhead
				if g := b.C.GrayFactorOn(relay, relay); g > 1 {
					d = time.Duration(float64(d) * g)
				}
				b.C.Node(relay).Meter.ChargeCPU(d)
				b.C.Engine(relay).After(d, func() {
					b.dispatchTree(t, relay, tr.Roots, size)
				})
			},
			func(ok bool, msgs, retries int) { // task outcome at the origin
				t.res.Messages += msgs
				t.res.Retries += retries
				if !ok {
					// Route around the dead relay: origin takes the group.
					b.dispatchTree(t, origin, tr.Roots, size)
				}
			})
	}
}

// subtreeCount returns the node count of a subtree (message sizing).
func subtreeCount(n *fptree.Node[cluster.NodeID]) int {
	c := 1
	for _, ch := range n.Children {
		c += subtreeCount(ch)
	}
	return c
}
