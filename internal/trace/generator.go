package trace

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"
)

// GenConfig parameterizes the synthetic workload generator. Defaults are
// calibrated so the generated traces reproduce the statistics the paper
// publishes about its production traces: 80–90% runtime overestimation,
// ~89% same-job resubmission within 24 h, ~71% of >6 h jobs submitted in
// the evening, and the correlation-decay shapes of Fig. 5b/5c (short-
// interval locality decaying to a system-maturity-dependent floor).
type GenConfig struct {
	// System labels the trace ("Tianhe-2A" or "NG-Tianhe").
	System string
	// Jobs is the number of jobs to generate.
	Jobs int
	// Days is the trace span.
	Days int
	// Users is the size of the user population.
	Users int
	// AppsPerUser is each user's application-pool size.
	AppsPerUser int
	// MaxNodes caps a job's node request.
	MaxNodes int
	// CoresPerNode converts node to core requests.
	CoresPerNode int
	// StableUsers is the fraction of users who rerun the same
	// applications for months (Tianhe-2A's mature population). The
	// remainder churn their applications every few sessions (NG-Tianhe's
	// young population), which kills long-interval correlation (Fig. 5b).
	StableUsers float64
	// FamilySkew is the Zipf exponent of application-family popularity. A
	// mature system concentrates on a few dominant applications (high
	// skew → high long-interval correlation floor); a young system's mix
	// is flat.
	FamilySkew float64
	// Variants is the number of script variants per family in circulation
	// (job names are family-vN). A mature system converges on one
	// canonical script; a young one has several competing.
	Variants int
	// Seed drives all randomness.
	Seed int64
}

// Tianhe2AConfig returns the generator calibration for the mature
// Tianhe-2A trace (Table III: 154,081 jobs over ~4 months; pass your own
// job count — smaller defaults keep experiments fast).
func Tianhe2AConfig(jobs int) GenConfig {
	return GenConfig{
		System: "Tianhe-2A", Jobs: jobs, Days: 30, Users: 120, AppsPerUser: 3,
		MaxNodes: 4096, CoresPerNode: 24, StableUsers: 0.85, FamilySkew: 2.5, Variants: 1,
		Seed: 20210601,
	}
}

// NGTianheConfig returns the generator calibration for the young NG-Tianhe
// trace (Table III: 52,162 jobs; correlation decays to ~0 past 30 h).
func NGTianheConfig(jobs int) GenConfig {
	return GenConfig{
		System: "NG-Tianhe", Jobs: jobs, Days: 30, Users: 200, AppsPerUser: 5,
		MaxNodes: 20480, CoresPerNode: 96, StableUsers: 0.15, FamilySkew: 0.6, Variants: 3,
		Seed: 20211001,
	}
}

// appFamilies reflects the paper's workload description: CFD,
// electromagnetics, combustion, nonlinear flows, bio-informatics and
// mechanical analyses.
//
//eslurmlint:ignore globalmut read-only name catalogue; only ever indexed by the generator, never written or handed out, so it cannot become cross-shard state
var appFamilies = []string{
	"cfd-sim", "em-field", "engine-comb", "nonlin-flow", "bioinf-align",
	"mech-strength", "wrf-fcst", "md-dynamics", "qcd-lattice", "seismic-inv",
}

// familyProfile is the shared characteristic of one application family:
// many users run the same code at similar scales, which is what makes
// cross-user job pairs correlate ("similar job names, required resources,
// and job runtime").
type familyProfile struct {
	name       string
	medianRun  time.Duration
	nodes      int
	longRunner bool
}

// app is one user's instance of a family (a submission script).
type app struct {
	profile   familyProfile
	name      string
	baseRun   time.Duration
	runSpread float64
	nodes     int
}

// Generate synthesizes a workload trace. The result is sorted by
// submission time with dense IDs and always passes Validate.
func Generate(cfg GenConfig) *Trace {
	if cfg.Jobs <= 0 {
		return &Trace{System: cfg.System}
	}
	if cfg.Days <= 0 {
		cfg.Days = 30
	}
	if cfg.Users <= 0 {
		cfg.Users = 100
	}
	if cfg.AppsPerUser <= 0 {
		cfg.AppsPerUser = 4
	}
	if cfg.MaxNodes <= 0 {
		cfg.MaxNodes = 4096
	}
	if cfg.CoresPerNode <= 0 {
		cfg.CoresPerNode = 24
	}
	if cfg.FamilySkew == 0 {
		cfg.FamilySkew = 1.0
	}
	if cfg.Variants <= 0 {
		cfg.Variants = 2
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Shared family profiles: two of the ten families are long-runners.
	profiles := make([]familyProfile, len(appFamilies))
	for i, name := range appFamilies {
		long := i == 3 || i == 7
		var median time.Duration
		if long {
			median = time.Duration(7+rng.Float64()*6) * time.Hour
		} else {
			median = time.Duration(3+rng.ExpFloat64()*25) * time.Minute
		}
		maxExp := math.Log2(float64(cfg.MaxNodes) / 4)
		if maxExp < 1 {
			maxExp = 1
		}
		profiles[i] = familyProfile{
			name:       name,
			medianRun:  median,
			nodes:      1 << int(rng.Float64()*maxExp),
			longRunner: long,
		}
	}
	// Zipf-like family popularity.
	famWeights := make([]float64, len(profiles))
	famTotal := 0.0
	for i := range famWeights {
		famWeights[i] = 1 / math.Pow(float64(i+1), cfg.FamilySkew)
		famTotal += famWeights[i]
	}
	pickFamily := func() familyProfile {
		r := rng.Float64() * famTotal
		for i, w := range famWeights {
			r -= w
			if r <= 0 {
				return profiles[i]
			}
		}
		return profiles[len(profiles)-1]
	}
	newApp := func() app {
		p := pickFamily()
		// Users share family names and scales with mild personal jitter,
		// so cross-user pairs still count as correlated.
		variant := rng.Intn(cfg.Variants)
		nodes := p.nodes
		if r := rng.Float64(); r < 0.20 && nodes > 1 {
			nodes /= 2
		} else if r > 0.90 && nodes*2 <= cfg.MaxNodes {
			nodes *= 2
		}
		// Most production apps rerun with near-identical runtimes (same
		// input deck); a minority are input-sensitive and vary wildly.
		// This mixture is what makes Table VIII's slack sweep work: a 5%
		// slack absorbs almost all underestimation on the tight majority.
		spread := 0.01 + rng.Float64()*0.05
		if rng.Float64() < 0.12 {
			spread = 0.25 + rng.Float64()*0.45
		}
		return app{
			profile:   p,
			name:      fmt.Sprintf("%s-v%d", p.name, variant),
			baseRun:   time.Duration(float64(p.medianRun) * (0.95 + rng.Float64()*0.1)),
			runSpread: spread,
			nodes:     nodes,
		}
	}

	type user struct {
		name   string
		apps   []app
		stable bool
		weight float64
	}
	users := make([]user, cfg.Users)
	totalW := 0.0
	for u := range users {
		usr := user{
			name:   fmt.Sprintf("user%03d", u),
			stable: rng.Float64() < cfg.StableUsers,
			// Heavy-tailed activity: a few users dominate submissions,
			// as in real traces.
			weight: math.Exp(1.5 * rng.NormFloat64()),
		}
		for a := 0; a < cfg.AppsPerUser; a++ {
			usr.apps = append(usr.apps, newApp())
		}
		users[u] = usr
		totalW += usr.weight
	}

	span := time.Duration(cfg.Days) * 24 * time.Hour
	jobs := make([]Job, 0, cfg.Jobs)

	emit := func(a app, usr *user, submit time.Duration) bool {
		if submit > span || len(jobs) >= cfg.Jobs {
			return false
		}
		// Weak scaling: running the family's problem on fewer (more) nodes
		// than its characteristic count lengthens (shortens) the runtime.
		scale := math.Pow(float64(a.profile.nodes)/float64(a.nodes), 0.7)
		runtime := lognormalDuration(rng, time.Duration(float64(a.baseRun)*scale), a.runSpread)
		jobs = append(jobs, Job{
			Name:         a.name,
			User:         usr.name,
			Nodes:        a.nodes,
			Submit:       submit,
			UserEstimate: userEstimate(rng, runtime),
			Runtime:      runtime,
		})
		return true
	}

	// Session-based submission: pick a user, then emit a burst of repeated
	// submissions of one app. Sweep sessions (large bursts of short jobs
	// minutes apart) are what give real traces their short-interval
	// correlation spike; long-runner sessions resubmit on successive
	// evenings.
	for len(jobs) < cfg.Jobs {
		r := rng.Float64() * totalW
		ui := 0
		for i := range users {
			r -= users[i].weight
			if r <= 0 {
				ui = i
				break
			}
		}
		usr := &users[ui]
		if !usr.stable && rng.Float64() < 0.3 {
			usr.apps[rng.Intn(len(usr.apps))] = newApp()
		}
		a := usr.apps[rng.Intn(len(usr.apps))]
		start := sessionStartTime(rng, span, a.profile.longRunner)

		switch {
		case a.profile.longRunner:
			// One submission per evening across a few days.
			n := 1 + rng.Intn(3)
			for b := 0; b < n; b++ {
				jitter := time.Duration((rng.Float64() - 0.5) * float64(2*time.Hour))
				if !emit(a, usr, start+time.Duration(b)*24*time.Hour+jitter) {
					break
				}
			}
		case rng.Float64() < 0.3:
			// Parameter sweep: tens of near-identical jobs minutes apart.
			n := 8 + rng.Intn(20)
			at := start
			for b := 0; b < n; b++ {
				if !emit(a, usr, at) {
					break
				}
				at += time.Duration(30*time.Second) + time.Duration(rng.ExpFloat64()*float64(3*time.Minute))
			}
		default:
			// Interactive session: a handful of resubmissions over hours.
			n := 1 + rng.Intn(6)
			at := start
			for b := 0; b < n; b++ {
				if !emit(a, usr, at) {
					break
				}
				at += time.Duration(rng.ExpFloat64() * float64(70*time.Minute))
			}
		}
	}

	sort.Slice(jobs, func(i, j int) bool { return jobs[i].Submit < jobs[j].Submit })
	for i := range jobs {
		jobs[i].ID = i
		jobs[i].Cores = jobs[i].Nodes * cfg.CoresPerNode
	}
	return &Trace{System: cfg.System, Jobs: jobs}
}

// sessionStartTime picks a session's first submission. Long-runner
// sessions are biased to the evening: the paper reports 71.4% of >6 h jobs
// submitted between 18:00 and 24:00.
func sessionStartTime(rng *rand.Rand, span time.Duration, longRunner bool) time.Duration {
	day := time.Duration(rng.Int63n(int64(span / (24 * time.Hour))))
	var hour float64
	if longRunner && rng.Float64() < 0.74 {
		hour = 18 + rng.Float64()*5.9
	} else {
		hour = math.Mod(9+rng.ExpFloat64()*5, 24)
	}
	return day*24*time.Hour + time.Duration(hour*float64(time.Hour))
}

// lognormalDuration draws around a median with multiplicative spread.
func lognormalDuration(rng *rand.Rand, median time.Duration, sigma float64) time.Duration {
	f := math.Exp(rng.NormFloat64() * sigma)
	d := time.Duration(float64(median) * f)
	if d < 10*time.Second {
		d = 10 * time.Second
	}
	return d
}

// userEstimate draws a user-supplied walltime for a job of the given
// runtime. Calibrated to Fig. 5a: ~85% overestimate (P > 1) with a long
// tail (round walltimes, "just ask for the queue max"), ~15%
// underestimate.
func userEstimate(rng *rand.Rand, runtime time.Duration) time.Duration {
	var f float64
	if rng.Float64() < 0.82 {
		f = 1.1 + rng.ExpFloat64()*2.5 // overestimate, median ~2.8x
	} else {
		f = 0.5 + rng.Float64()*0.48 // underestimate
	}
	est := time.Duration(float64(runtime) * f)
	// Users round up to 15-minute granularity.
	gran := 15 * time.Minute
	if est > gran {
		est = (est/gran + 1) * gran
	}
	if est < time.Minute {
		est = time.Minute
	}
	return est
}
