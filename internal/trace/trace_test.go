package trace

import (
	"math/rand"
	"testing"
	"time"
)

func TestGeneratedTraceValidates(t *testing.T) {
	for _, cfg := range []GenConfig{Tianhe2AConfig(5000), NGTianheConfig(5000)} {
		tr := Generate(cfg)
		if len(tr.Jobs) != 5000 {
			t.Fatalf("%s: generated %d jobs, want 5000", cfg.System, len(tr.Jobs))
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("%s: %v", cfg.System, err)
		}
		if tr.Duration() <= 0 {
			t.Errorf("%s: zero duration", cfg.System)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Tianhe2AConfig(500))
	b := Generate(Tianhe2AConfig(500))
	for i := range a.Jobs {
		if a.Jobs[i] != b.Jobs[i] {
			t.Fatal("same config produced different traces")
		}
	}
}

func TestGenerateEmpty(t *testing.T) {
	tr := Generate(GenConfig{System: "x"})
	if len(tr.Jobs) != 0 {
		t.Error("zero-job config must produce an empty trace")
	}
}

func TestOverestimationCalibration(t *testing.T) {
	// Paper, Fig. 5a: "around 80-90% of the job runtime were overestimated
	// by users."
	tr := Generate(Tianhe2AConfig(20000))
	f := tr.OverestimateFraction()
	if f < 0.78 || f > 0.92 {
		t.Errorf("overestimate fraction = %.3f, want 0.80-0.90", f)
	}
}

func TestPCDFMonotone(t *testing.T) {
	tr := Generate(NGTianheConfig(5000))
	ths := []float64{0.5, 1, 2, 4, 8, 16}
	cdf := tr.PCDF(ths)
	for i := 1; i < len(cdf); i++ {
		if cdf[i] < cdf[i-1] {
			t.Fatalf("CDF not monotone: %v", cdf)
		}
	}
	if cdf[len(cdf)-1] < 0.9 {
		t.Errorf("CDF(16) = %v, want most jobs below 16x overestimation", cdf[len(cdf)-1])
	}
	// CDF at P=1 is the complement of the overestimate fraction.
	want := 1 - tr.OverestimateFraction()
	if diff := cdf[1] - want; diff > 0.02 || diff < -0.02 {
		t.Errorf("CDF(1) = %v vs 1-overest = %v", cdf[1], want)
	}
}

func TestEveningLongJobCalibration(t *testing.T) {
	// Paper: "71.4% of jobs requiring a runtime longer than six hours were
	// submitted between 6 pm and 12 am."
	tr := Generate(Tianhe2AConfig(20000))
	f := tr.LongJobEveningFraction()
	if f < 0.6 || f > 0.85 {
		t.Errorf("evening fraction of long jobs = %.3f, want ~0.71", f)
	}
}

func TestResubmissionCalibration(t *testing.T) {
	// Paper: "an average 89.2% probability for a user to submit the same
	// job that the user has submitted in the past 24 hours."
	// The mature system lands slightly above the paper's cross-trace
	// average, the young one slightly below; assert both stay in a band
	// around 0.89.
	for _, cfg := range []GenConfig{Tianhe2AConfig(20000), NGTianheConfig(20000)} {
		f := Generate(cfg).ResubmissionProbability24h()
		if f < 0.80 || f > 0.98 {
			t.Errorf("%s: 24h resubmission probability = %.3f, want ~0.89", cfg.System, f)
		}
	}
}

func TestCorrelatedDefinition(t *testing.T) {
	a := &Job{Name: "cfd", Nodes: 100, Runtime: time.Hour}
	cases := []struct {
		b    Job
		want bool
	}{
		{Job{Name: "cfd", Nodes: 100, Runtime: time.Hour}, true},
		{Job{Name: "other", Nodes: 100, Runtime: time.Hour}, false},
		{Job{Name: "cfd", Nodes: 130, Runtime: time.Hour}, false}, // >25% node gap
		{Job{Name: "cfd", Nodes: 120, Runtime: time.Hour}, true},
		{Job{Name: "cfd", Nodes: 100, Runtime: 3 * time.Hour}, false}, // >2x runtime
		{Job{Name: "cfd", Nodes: 100, Runtime: 90 * time.Minute}, true},
	}
	for i, c := range cases {
		if got := Correlated(a, &c.b); got != c.want {
			t.Errorf("case %d: Correlated = %v, want %v", i, got, c.want)
		}
	}
}

func TestCorrelationDecaysWithInterval(t *testing.T) {
	// Fig. 5b: correlation decreases significantly as the interval grows.
	tr := Generate(Tianhe2AConfig(20000))
	rng := rand.New(rand.NewSource(1))
	pts := tr.CorrelationVsInterval(36, 3000, rng)
	if len(pts) != 36 {
		t.Fatalf("points = %d", len(pts))
	}
	early := (pts[0].Ratio + pts[1].Ratio + pts[2].Ratio) / 3
	late := (pts[33].Ratio + pts[34].Ratio + pts[35].Ratio) / 3
	if early <= late {
		t.Errorf("correlation did not decay: early=%.3f late=%.3f", early, late)
	}
	if early < 0.2 {
		t.Errorf("short-interval correlation = %.3f, want substantial locality", early)
	}
}

func TestStableSystemKeepsLongIntervalCorrelation(t *testing.T) {
	// Fig. 5b: at 30+ hours Tianhe-2A stabilizes ~0.3 while NG-Tianhe
	// drops toward 0 — the mature system has more stable users and
	// applications.
	rng := rand.New(rand.NewSource(2))
	mature := Generate(Tianhe2AConfig(20000))
	young := Generate(NGTianheConfig(20000))
	mp := mature.CorrelationVsInterval(40, 3000, rng)
	yp := young.CorrelationVsInterval(40, 3000, rng)
	mLate := (mp[36].Ratio + mp[37].Ratio + mp[38].Ratio + mp[39].Ratio) / 4
	yLate := (yp[36].Ratio + yp[37].Ratio + yp[38].Ratio + yp[39].Ratio) / 4
	if mLate <= yLate {
		t.Errorf("mature late correlation %.3f <= young %.3f", mLate, yLate)
	}
	if yLate > 0.15 {
		t.Errorf("young system late correlation = %.3f, want near 0", yLate)
	}
}

func TestCorrelationDecaysWithIDGap(t *testing.T) {
	// Fig. 5c: decays with ID gap, stabilizing low past ~700.
	tr := Generate(Tianhe2AConfig(20000))
	rng := rand.New(rand.NewSource(3))
	pts := tr.CorrelationVsIDGap(1400, 100, 3000, rng)
	if len(pts) != 14 {
		t.Fatalf("points = %d", len(pts))
	}
	early := pts[0].Ratio
	late := (pts[12].Ratio + pts[13].Ratio) / 2
	if early <= late {
		t.Errorf("ID-gap correlation did not decay: early=%.3f late=%.3f", early, late)
	}
}

func TestSubmitHour(t *testing.T) {
	j := Job{Submit: 26*time.Hour + 30*time.Minute}
	if j.SubmitHour() != 2 {
		t.Errorf("SubmitHour = %d, want 2", j.SubmitHour())
	}
}

func TestPZeroRuntime(t *testing.T) {
	j := Job{UserEstimate: time.Hour}
	if j.P() != 0 {
		t.Error("P with zero runtime must be 0")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	tr := Generate(Tianhe2AConfig(100))
	tr.Jobs[50].ID = 99
	if tr.Validate() == nil {
		t.Error("bad ID not caught")
	}
	tr = Generate(Tianhe2AConfig(100))
	tr.Jobs[50].Runtime = 0
	if tr.Validate() == nil {
		t.Error("zero runtime not caught")
	}
	tr = Generate(Tianhe2AConfig(100))
	tr.Jobs[50].Submit = tr.Jobs[49].Submit - time.Hour
	if tr.Validate() == nil {
		t.Error("time disorder not caught")
	}
}

func BenchmarkGenerate50K(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Generate(NGTianheConfig(50000))
	}
}
