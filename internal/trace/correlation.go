package trace

import (
	"math/rand"
	"sort"
	"time"
)

// CorrelationPoint is one bucket of a correlation curve.
type CorrelationPoint struct {
	// X is the bucket's coordinate: hours of submission interval
	// (Fig. 5b) or job-ID gap (Fig. 5c).
	X float64
	// Ratio is the fraction of sampled job pairs in the bucket that are
	// correlated.
	Ratio float64
	// Pairs is the number of pairs sampled.
	Pairs int
}

// CorrelationVsInterval estimates the job-correlation ratio as a function
// of the submission interval (Fig. 5b). Buckets are
// [0,1h), [1h,2h), ... up to maxHours. Exhaustive pair enumeration is
// O(n²); samplesPerBucket random pairs per bucket (0 defaults to 2000)
// give the same curve at trace scale.
func (t *Trace) CorrelationVsInterval(maxHours, samplesPerBucket int, rng *rand.Rand) []CorrelationPoint {
	if samplesPerBucket <= 0 {
		samplesPerBucket = 2000
	}
	n := len(t.Jobs)
	out := make([]CorrelationPoint, 0, maxHours)
	if n < 2 {
		return out
	}
	submits := make([]time.Duration, n)
	for i := range t.Jobs {
		submits[i] = t.Jobs[i].Submit
	}
	for h := 0; h < maxHours; h++ {
		lo, hi := time.Duration(h)*time.Hour, time.Duration(h+1)*time.Hour
		correlated, pairs := 0, 0
		for s := 0; s < samplesPerBucket; s++ {
			i := rng.Intn(n)
			// Jobs submitted within [submit+lo, submit+hi).
			base := submits[i]
			a := sort.Search(n, func(k int) bool { return submits[k] >= base+lo })
			b := sort.Search(n, func(k int) bool { return submits[k] >= base+hi })
			if b <= a {
				continue
			}
			j := a + rng.Intn(b-a)
			if j == i {
				continue
			}
			pairs++
			if Correlated(&t.Jobs[i], &t.Jobs[j]) {
				correlated++
			}
		}
		ratio := 0.0
		if pairs > 0 {
			ratio = float64(correlated) / float64(pairs)
		}
		out = append(out, CorrelationPoint{X: float64(h), Ratio: ratio, Pairs: pairs})
	}
	return out
}

// CorrelationVsIDGap estimates the job-correlation ratio as a function of
// the job-ID gap (Fig. 5c), in buckets of gapStep IDs up to maxGap.
func (t *Trace) CorrelationVsIDGap(maxGap, gapStep, samplesPerBucket int, rng *rand.Rand) []CorrelationPoint {
	if samplesPerBucket <= 0 {
		samplesPerBucket = 2000
	}
	if gapStep <= 0 {
		gapStep = 50
	}
	n := len(t.Jobs)
	var out []CorrelationPoint
	if n < 2 {
		return out
	}
	for gap := gapStep; gap <= maxGap; gap += gapStep {
		correlated, pairs := 0, 0
		for s := 0; s < samplesPerBucket; s++ {
			i := rng.Intn(n)
			// Sample a gap in (gap-gapStep, gap].
			g := gap - rng.Intn(gapStep)
			j := i + g
			if j >= n {
				continue
			}
			pairs++
			if Correlated(&t.Jobs[i], &t.Jobs[j]) {
				correlated++
			}
		}
		ratio := 0.0
		if pairs > 0 {
			ratio = float64(correlated) / float64(pairs)
		}
		out = append(out, CorrelationPoint{X: float64(gap), Ratio: ratio, Pairs: pairs})
	}
	return out
}
