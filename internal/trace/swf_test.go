package trace

import (
	"strings"
	"testing"
	"time"
)

func TestSWFRoundTrip(t *testing.T) {
	tr := Generate(Tianhe2AConfig(500))
	var sb strings.Builder
	if err := tr.WriteSWF(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := ParseSWF(strings.NewReader(sb.String()), tr.Jobs[0].Cores/tr.Jobs[0].Nodes)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Jobs) != len(tr.Jobs) {
		t.Fatalf("parsed %d jobs, wrote %d", len(back.Jobs), len(tr.Jobs))
	}
	for i := range tr.Jobs {
		a, b := &tr.Jobs[i], &back.Jobs[i]
		// Second-granularity round trip.
		if int64(a.Submit.Seconds()) != int64(b.Submit.Seconds()) {
			t.Fatalf("job %d submit %v vs %v", i, a.Submit, b.Submit)
		}
		if int64(a.Runtime.Seconds()) != int64(b.Runtime.Seconds()) {
			t.Fatalf("job %d runtime %v vs %v", i, a.Runtime, b.Runtime)
		}
		if a.Cores != b.Cores {
			t.Fatalf("job %d cores %d vs %d", i, a.Cores, b.Cores)
		}
		if int64(a.UserEstimate.Seconds()) != int64(b.UserEstimate.Seconds()) {
			t.Fatalf("job %d estimate %v vs %v", i, a.UserEstimate, b.UserEstimate)
		}
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParseSWFHandConstructed(t *testing.T) {
	const swf = `
; a comment line
   ; indented comment

1 0 5 3600 64 -1 -1 64 7200 -1 1 42 -1 7 -1 -1 -1 -1
2 60 -1 100 -1 -1 -1 24 -1 -1 1 42 -1 7 -1 -1 -1 -1
3 120 -1 0 16 -1 -1 16 600 -1 0 9 -1 -1 -1 -1 -1 -1
`
	tr, err := ParseSWF(strings.NewReader(swf), 24)
	if err != nil {
		t.Fatal(err)
	}
	// Job 3 has runtime 0 (cancelled) and is dropped.
	if len(tr.Jobs) != 2 {
		t.Fatalf("jobs = %d, want 2", len(tr.Jobs))
	}
	j := tr.Jobs[0]
	if j.Runtime != 3600*time.Second || j.Cores != 64 || j.Nodes != 3 {
		t.Fatalf("job 1 = %+v", j)
	}
	if j.UserEstimate != 7200*time.Second {
		t.Fatalf("estimate = %v", j.UserEstimate)
	}
	if j.User != "user042" || !strings.Contains(j.Name, "app7") {
		t.Fatalf("identity = %q %q", j.User, j.Name)
	}
	// Job 2: no requested time (-1) -> estimate defaults to 2x runtime;
	// requested procs present.
	j2 := tr.Jobs[1]
	if j2.UserEstimate != 200*time.Second || j2.Nodes != 1 {
		t.Fatalf("job 2 = %+v", j2)
	}
	// Same (app, user) share a name: the estimation framework's locality
	// feature survives the SWF round trip.
	if tr.Jobs[0].Name != tr.Jobs[1].Name {
		t.Error("same app+user produced different names")
	}
}

func TestParseSWFErrors(t *testing.T) {
	cases := []string{
		"1 0 -1",                         // too few fields
		"x 0 -1 10 1 -1 -1 1 10 -1 -1 1", // non-numeric
		"1 100 -1 10 1 -1 -1 1 10 -1 -1 1\n2 50 -1 10 1 -1 -1 1 10 -1 -1 1", // disorder
	}
	for _, c := range cases {
		if _, err := ParseSWF(strings.NewReader(c), 24); err == nil {
			t.Errorf("ParseSWF(%q) did not fail", c)
		}
	}
}

func TestSWFReplaysThroughEstimator(t *testing.T) {
	// End-to-end: synthetic trace -> SWF -> parse -> the parsed jobs keep
	// enough structure for the locality analyses.
	tr := Generate(NGTianheConfig(2000))
	var sb strings.Builder
	tr.WriteSWF(&sb)
	back, err := ParseSWF(strings.NewReader(sb.String()), 96)
	if err != nil {
		t.Fatal(err)
	}
	f := back.OverestimateFraction()
	if f < 0.7 {
		t.Errorf("overestimation lost in round trip: %v", f)
	}
	if back.ResubmissionProbability24h() < 0.5 {
		t.Error("resubmission locality lost in round trip")
	}
}
