// Package trace models HPC workload traces: the job record (with the
// Table IV features), synthetic generators calibrated to the published
// statistics of the paper's two production traces (Table III: Tianhe-2A,
// 154,081 jobs; NG-Tianhe, 52,162 jobs), and the locality analyses behind
// Fig. 5 (runtime-overestimation CDF, job-correlation decay with
// submission interval and with job-ID gap).
//
// Determinism: synthetic generators draw from an explicit seeded
// rand.Rand and emit jobs in submission order, so a given seed always
// produces the identical workload — the precondition for every
// deterministic replay downstream.
package trace

import (
	"fmt"
	"sort"
	"time"
)

// Job is one submitted job. The first five fields are the features of
// Table IV; Runtime and UserEstimate drive scheduling and estimator
// evaluation.
type Job struct {
	// ID is the submission sequence number within its trace.
	ID int
	// Name identifies the application/script.
	Name string
	// User is the submitting user.
	User string
	// Nodes and Cores are the requested resources.
	Nodes int
	Cores int
	// Submit is the submission instant relative to trace start.
	Submit time.Duration
	// UserEstimate is the user-supplied walltime request (t_s).
	UserEstimate time.Duration
	// Runtime is the job's actual runtime (t_r).
	Runtime time.Duration
}

// SubmitHour returns the hour-of-day (0–23) of submission, the
// "submission time (hours only)" feature of Table IV.
func (j *Job) SubmitHour() int {
	return int(j.Submit/time.Hour) % 24
}

// P returns the user's runtime-estimation accuracy t_s/t_r (Fig. 5a);
// P > 1 is an overestimate.
func (j *Job) P() float64 {
	if j.Runtime <= 0 {
		return 0
	}
	return float64(j.UserEstimate) / float64(j.Runtime)
}

// Trace is a time-ordered sequence of jobs from one system.
type Trace struct {
	System string
	Jobs   []Job
}

// Validate checks trace invariants: IDs dense and increasing, submissions
// time-ordered, positive resources and runtimes.
func (t *Trace) Validate() error {
	for i := range t.Jobs {
		j := &t.Jobs[i]
		if j.ID != i {
			return fmt.Errorf("trace: job %d has ID %d", i, j.ID)
		}
		if i > 0 && j.Submit < t.Jobs[i-1].Submit {
			return fmt.Errorf("trace: job %d submitted before its predecessor", i)
		}
		if j.Nodes <= 0 || j.Cores <= 0 {
			return fmt.Errorf("trace: job %d has nonpositive resources", i)
		}
		if j.Runtime <= 0 || j.UserEstimate <= 0 {
			return fmt.Errorf("trace: job %d has nonpositive times", i)
		}
	}
	return nil
}

// Duration returns the span from first to last submission.
func (t *Trace) Duration() time.Duration {
	if len(t.Jobs) == 0 {
		return 0
	}
	return t.Jobs[len(t.Jobs)-1].Submit - t.Jobs[0].Submit
}

// Correlated reports whether two jobs form a correlated pair under the
// paper's definition: "similar job names, required resources, and job
// runtime". We require equal names, node counts within 25%, and runtimes
// within a factor of two.
func Correlated(a, b *Job) bool {
	if a.Name != b.Name {
		return false
	}
	na, nb := float64(a.Nodes), float64(b.Nodes)
	if na > nb*1.25 || nb > na*1.25 {
		return false
	}
	ra, rb := float64(a.Runtime), float64(b.Runtime)
	if ra > rb*2 || rb > ra*2 {
		return false
	}
	return true
}

// OverestimateFraction returns the fraction of jobs with P > 1 (the paper
// reports 80–90% across both traces).
func (t *Trace) OverestimateFraction() float64 {
	if len(t.Jobs) == 0 {
		return 0
	}
	k := 0
	for i := range t.Jobs {
		if t.Jobs[i].P() > 1 {
			k++
		}
	}
	return float64(k) / float64(len(t.Jobs))
}

// PCDF returns the cumulative distribution of P = t_s/t_r evaluated at the
// given thresholds (Fig. 5a): out[i] is the fraction of jobs with
// P ≤ thresholds[i].
func (t *Trace) PCDF(thresholds []float64) []float64 {
	ps := make([]float64, len(t.Jobs))
	for i := range t.Jobs {
		ps[i] = t.Jobs[i].P()
	}
	sort.Float64s(ps)
	out := make([]float64, len(thresholds))
	for i, th := range thresholds {
		out[i] = float64(sort.SearchFloat64s(ps, th+1e-12)) / float64(max(1, len(ps)))
	}
	return out
}

// LongJobEveningFraction returns the fraction of jobs with runtime longer
// than six hours that were submitted between 18:00 and 24:00 (the paper
// reports 71.4%).
func (t *Trace) LongJobEveningFraction() float64 {
	long, evening := 0, 0
	for i := range t.Jobs {
		j := &t.Jobs[i]
		if j.Runtime > 6*time.Hour {
			long++
			if h := j.SubmitHour(); h >= 18 {
				evening++
			}
		}
	}
	if long == 0 {
		return 0
	}
	return float64(evening) / float64(long)
}

// ResubmissionProbability24h returns the probability that a job's name was
// already submitted by the same user within the preceding 24 hours (the
// paper reports 89.2%).
func (t *Trace) ResubmissionProbability24h() float64 {
	type key struct{ user, name string }
	last := make(map[key]time.Duration)
	hits, total := 0, 0
	for i := range t.Jobs {
		j := &t.Jobs[i]
		k := key{j.User, j.Name}
		if prev, ok := last[k]; ok {
			total++
			if j.Submit-prev <= 24*time.Hour {
				hits++
			}
		}
		last[k] = j.Submit
	}
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
