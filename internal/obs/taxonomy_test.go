package obs_test

import (
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"eslurm/internal/obs"
)

// Emit-site patterns. Span names land via Tracer.Start/Instant or the
// sharded broadcaster's startSpan/instantSpan helpers; metric names via
// Registry.Counter/Gauge/Histogram. All names are dotted lowercase
// literals by convention, which is what keeps this scan precise.
var (
	spanCall   = regexp.MustCompile(`(?:\.Start|\.Instant|startSpan|instantSpan)\("([a-z]+\.[a-z_]+)"`)
	metricCall = regexp.MustCompile(`(?:Counter|Gauge|Histogram)\("([a-z]+\.[a-z_]+)"`)
)

// scanSources walks internal/ (skipping tests, testdata and the linter's
// fixture corpus) and collects every emitted span and metric name.
func scanSources(t *testing.T) (spans, metrics map[string]bool) {
	t.Helper()
	spans, metrics = map[string]bool{}, map[string]bool{}
	root := ".." // internal/, from internal/obs
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == "testdata" || path == filepath.Join(root, "lint") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range spanCall.FindAllSubmatch(data, -1) {
			spans[string(m[1])] = true
		}
		for _, m := range metricCall.FindAllSubmatch(data, -1) {
			metrics[string(m[1])] = true
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return spans, metrics
}

// TestSpanTaxonomyComplete checks the taxonomy against the code in both
// directions: every emitted span name is documented, and every
// documented name is still emitted somewhere.
func TestSpanTaxonomyComplete(t *testing.T) {
	emitted, _ := scanSources(t)
	documented := map[string]bool{}
	for _, s := range obs.SpanTaxonomy() {
		if documented[s.Name] {
			t.Errorf("span %q listed twice in the taxonomy", s.Name)
		}
		documented[s.Name] = true
		if s.Kind != "span" && s.Kind != "instant" {
			t.Errorf("span %q has kind %q; want span or instant", s.Name, s.Kind)
		}
	}
	for name := range emitted {
		if !documented[name] {
			t.Errorf("span %q is emitted but missing from obs.SpanTaxonomy — document it (and OBSERVABILITY.md will follow)", name)
		}
	}
	for name := range documented {
		if !emitted[name] {
			t.Errorf("span %q is documented in obs.SpanTaxonomy but no longer emitted anywhere", name)
		}
	}
}

// TestMetricTaxonomyComplete is the metric half of the same contract.
func TestMetricTaxonomyComplete(t *testing.T) {
	_, emitted := scanSources(t)
	documented := map[string]bool{}
	for _, m := range obs.MetricTaxonomy() {
		if documented[m.Name] {
			t.Errorf("metric %q listed twice in the taxonomy", m.Name)
		}
		documented[m.Name] = true
	}
	for name := range emitted {
		if !documented[name] {
			t.Errorf("metric %q is registered but missing from obs.MetricTaxonomy", name)
		}
	}
	for name := range documented {
		if !emitted[name] {
			t.Errorf("metric %q is documented in obs.MetricTaxonomy but no longer registered anywhere", name)
		}
	}
}
