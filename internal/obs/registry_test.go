package obs_test

import (
	"bytes"
	"strings"
	"testing"

	"eslurm/internal/obs"
)

func TestNilRegistryHandsOutInertInstruments(t *testing.T) {
	var r *obs.Registry
	c := r.Counter("a")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatalf("nil-registry counter holds %d", c.Value())
	}
	g := r.Gauge("b")
	g.Set(3)
	g.Add(-1)
	if g.Value() != 0 {
		t.Fatalf("nil-registry gauge holds %d", g.Value())
	}
	h := r.Histogram("c", []int64{1})
	h.Observe(7)
	if h.Count() != 0 || h.Sum() != 0 || h.Counts() != nil || h.Bounds() != nil {
		t.Fatal("nil-registry histogram recorded")
	}
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot non-nil")
	}
}

func TestCounterAndGauge(t *testing.T) {
	r := obs.NewRegistry()
	c := r.Counter("x")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if r.Counter("x") != c {
		t.Fatal("second lookup built a new counter")
	}
	g := r.Gauge("x") // same name, different kind: distinct instrument
	g.Set(10)
	g.Add(-3)
	if g.Value() != 7 {
		t.Fatalf("gauge = %d, want 7", g.Value())
	}
}

// TestHistogramBucketBoundaries pins the edge semantics: upper bounds
// are inclusive, values above the last bound land in the overflow
// bucket, and values below the first bound (including negatives) land
// in the first.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := obs.NewRegistry()
	h := r.Histogram("lat", []int64{10, 20})
	for _, v := range []int64{-5, 0, 10, 11, 20, 21, 1000} {
		h.Observe(v)
	}
	want := []int64{3, 2, 2} // (-inf,10], (10,20], (20,+inf)
	got := h.Counts()
	if len(got) != len(want) {
		t.Fatalf("bucket count %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
	if h.Count() != 7 {
		t.Fatalf("count = %d, want 7", h.Count())
	}
	if h.Sum() != -5+0+10+11+20+21+1000 {
		t.Fatalf("sum = %d", h.Sum())
	}
}

func TestHistogramUnsortedBoundsAndRebind(t *testing.T) {
	r := obs.NewRegistry()
	h := r.Histogram("h", []int64{20, 10}) // sorted at registration
	h.Observe(15)
	if h.Counts()[1] != 1 {
		t.Fatalf("15 not in (10,20] bucket: %v", h.Counts())
	}
	// Re-registering with different bounds returns the original.
	if h2 := r.Histogram("h", []int64{1}); h2 != h || len(h2.Bounds()) != 2 {
		t.Fatal("re-registration replaced the histogram")
	}
}

func TestSnapshotOrderIsStable(t *testing.T) {
	r := obs.NewRegistry()
	// Register deliberately out of name order and across kinds.
	r.Gauge("zz").Set(1)
	r.Counter("mm").Inc()
	r.Histogram("aa", []int64{5}).Observe(3)
	r.Counter("aa").Add(2) // same name as the histogram

	var names []string
	for _, m := range r.Snapshot() {
		names = append(names, m.Kind+":"+m.Name)
	}
	want := "counter:aa,histogram:aa,counter:mm,gauge:zz"
	if got := strings.Join(names, ","); got != want {
		t.Fatalf("snapshot order %s, want %s", got, want)
	}

	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	wantText := strings.Join([]string{
		"counter aa 2",
		"histogram aa count=1 sum=3",
		"  le=5 1",
		"  le=+Inf 1",
		"counter mm 1",
		"gauge zz 1",
		"",
	}, "\n")
	if buf.String() != wantText {
		t.Fatalf("text dump:\n%s\nwant:\n%s", buf.String(), wantText)
	}
}
