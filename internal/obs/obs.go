// Package obs is the observability layer of the reproduction: spans and
// metrics recorded in *simulated* time, the way the paper watches ESlurm
// (broadcast latency breakdowns, satellite failover timelines, prediction
// hit rates) rather than in host time.
//
// Two surfaces:
//
//   - Tracer — parent/child spans and instant events stamped with the
//     engine's virtual clock, exported as Chrome trace_event JSON
//     (chrome://tracing, Perfetto) or a byte-stable text dump.
//   - Registry — named counters, gauges and fixed-bucket histograms with
//     a stable snapshot order, the single home for the stack's event
//     counters (master, comm, satellite pool, scheduler).
//
// Determinism contract: recording is passive — no events are scheduled,
// no RNG streams are drawn, no host clocks are read (the clock is
// injected, in practice simnet.Engine.Now), so enabling observability
// never perturbs an event trace: the same seed yields byte-identical
// exports, digest-pinned by the chaos harness. Disabled tracing costs a
// nil check: every Tracer method is safe on a nil receiver, keeping the
// kernel fast path allocation-free.
package obs

import "strconv"

// Attr is one key/value annotation on a span or instant event. Values
// are strings so exports are trivially byte-stable; use the constructors
// below for non-string values.
type Attr struct {
	Key, Value string
}

// String builds a string-valued attribute.
func String(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int builds an integer-valued attribute.
func Int(k string, v int) Attr { return Attr{Key: k, Value: strconv.Itoa(v)} }

// Int64 builds an int64-valued attribute.
func Int64(k string, v int64) Attr { return Attr{Key: k, Value: strconv.FormatInt(v, 10)} }
