package obs

import (
	"fmt"
	"hash/fnv"
	"io"
	"strconv"
	"time"
)

// SpanID names one span within its Tracer. The zero SpanID means "no
// span": it is what a nil Tracer returns from Start, and what callers
// pass as parent for a root span, so instrumentation threads parents
// through callbacks without caring whether tracing is on.
type SpanID int32

// Span is the recorded form of one traced operation. Times are virtual
// (the injected clock's values), not host time.
type Span struct {
	Name   string
	Parent SpanID
	Start  time.Duration
	// End is valid only when Ended is true; a span left open at export
	// time (e.g. a simulation stopped mid-broadcast) stays unclosed in
	// the export rather than being given a fake end.
	End     time.Duration
	Ended   bool
	Instant bool
	Attrs   []Attr
}

// opKind discriminates entries of the tracer's chronological log.
type opKind uint8

const (
	opBegin opKind = iota
	opEnd
	opInstant
)

// op is one entry in the chronological log. Keeping an explicit log —
// rather than sorting spans at export time — preserves the true causal
// order natively: a parent's begin precedes its children's, ties at the
// same virtual instant keep program order, and no sort (stable or not)
// has to reconstruct it.
type op struct {
	kind opKind
	span SpanID
	at   time.Duration
}

// Tracer records spans in simulated time. The zero value is not useful;
// build one with NewTracer (or simnet.Engine.EnableTracing). All methods
// are safe on a nil receiver and do nothing, so instrumented code calls
// them unconditionally — disabled tracing is a nil check.
//
// A Tracer is single-threaded, like the engine whose clock it borrows.
type Tracer struct {
	clock func() time.Duration
	spans []Span
	ops   []op
}

// NewTracer returns a tracer stamping events with clock. Pass the
// engine's Now so spans live in virtual time.
func NewTracer(clock func() time.Duration) *Tracer {
	return &Tracer{clock: clock}
}

// Start opens a span under parent (0 for a root span) and returns its
// ID. On a nil tracer it returns 0, which every other method ignores.
func (t *Tracer) Start(name string, parent SpanID, attrs ...Attr) SpanID {
	if t == nil {
		return 0
	}
	now := t.clock()
	t.spans = append(t.spans, Span{Name: name, Parent: parent, Start: now, Attrs: attrs})
	id := SpanID(len(t.spans))
	t.ops = append(t.ops, op{opBegin, id, now})
	return id
}

// End closes the span at the current virtual time. Ending a zero or
// already-ended span is a no-op.
func (t *Tracer) End(id SpanID) {
	if t == nil || id == 0 {
		return
	}
	sp := &t.spans[id-1]
	if sp.Ended || sp.Instant {
		return
	}
	now := t.clock()
	sp.End, sp.Ended = now, true
	t.ops = append(t.ops, op{opEnd, id, now})
}

// SetAttr annotates a span. Attributes may be added any time before
// export (a broadcast span learns its delivered count only at the end);
// exports always carry the final set.
func (t *Tracer) SetAttr(id SpanID, key, value string) {
	if t == nil || id == 0 {
		return
	}
	sp := &t.spans[id-1]
	sp.Attrs = append(sp.Attrs, Attr{Key: key, Value: value})
}

// SetAttrInt annotates a span with an integer value.
func (t *Tracer) SetAttrInt(id SpanID, key string, v int) {
	t.SetAttr(id, key, fmtInt(v))
}

// Instant records a zero-duration event (a state transition, an alert)
// under parent, and returns its ID so callers may attach further
// attributes.
func (t *Tracer) Instant(name string, parent SpanID, attrs ...Attr) SpanID {
	if t == nil {
		return 0
	}
	now := t.clock()
	t.spans = append(t.spans, Span{Name: name, Parent: parent, Start: now, Instant: true, Attrs: attrs})
	id := SpanID(len(t.spans))
	t.ops = append(t.ops, op{opInstant, id, now})
	return id
}

// Len returns the number of recorded spans and instants (0 on nil).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.spans)
}

// Spans returns the recorded spans in creation order. The slice is the
// tracer's own storage: read, don't mutate.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	return t.spans
}

// WriteText writes the chronological, byte-stable text dump: one line
// per begin/end/instant in record order. Begin and instant lines carry
// the span's final attributes; end lines repeat only the name.
//
//	b <ns> <id> <name> [parent=<id>] [key=value ...]
//	e <ns> <id> <name>
//	i <ns> <id> <name> [parent=<id>] [key=value ...]
func (t *Tracer) WriteText(w io.Writer) error {
	if t == nil {
		return nil
	}
	for _, o := range t.ops {
		sp := &t.spans[o.span-1]
		var err error
		switch o.kind {
		case opEnd:
			_, err = fmt.Fprintf(w, "e %d %d %s\n", o.at, o.span, sp.Name)
		default:
			kind := "b"
			if o.kind == opInstant {
				kind = "i"
			}
			_, err = fmt.Fprintf(w, "%s %d %d %s%s%s\n", kind, o.at, o.span, sp.Name, parentSuffix(sp.Parent), attrSuffix(sp.Attrs))
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// Digest returns the FNV-64a hash of the WriteText dump — the compact
// fingerprint determinism tests pin (same seed, same digest, bit for
// bit).
func (t *Tracer) Digest() uint64 {
	if t == nil {
		return 0
	}
	h := fnv.New64a()
	// fnv's Write never fails; WriteText only surfaces writer errors.
	_ = t.WriteText(h)
	return h.Sum64()
}

func parentSuffix(p SpanID) string {
	if p == 0 {
		return ""
	}
	return " parent=" + fmtInt(int(p))
}

func attrSuffix(attrs []Attr) string {
	var s string
	for _, a := range attrs {
		s += " " + a.Key + "=" + a.Value
	}
	return s
}

// fmtInt is strconv.Itoa under a short local name.
func fmtInt(v int) string { return strconv.Itoa(v) }

// CellRef renders the cross-cell span reference ("c<cell>.<id>") that
// sharded components attach as the "xparent" attribute when a span's
// logical parent lives on another cell's tracer (parent ids only index
// the recording tracer). critpath.FromCells resolves these references
// when it flattens per-cell recordings into one DAG.
func CellRef(cell int, id SpanID) string {
	return "c" + strconv.Itoa(cell) + "." + strconv.Itoa(int(id))
}
