package obs

import (
	"strings"
	"testing"
)

func TestMerge(t *testing.T) {
	a := NewRegistry()
	a.Counter("msgs").Add(3)
	a.Gauge("sockets").Set(2)
	a.Histogram("lat", []int64{10, 100}).Observe(5)
	a.Histogram("lat", []int64{10, 100}).Observe(50)

	b := NewRegistry()
	b.Counter("msgs").Add(4)
	b.Counter("drops").Add(1)
	b.Gauge("sockets").Set(7)
	b.Histogram("lat", []int64{10, 100}).Observe(500)

	m := NewRegistry()
	m.Merge(a)
	m.Merge(b)

	if v := m.Counter("msgs").Value(); v != 7 {
		t.Errorf("msgs = %d, want 7", v)
	}
	if v := m.Counter("drops").Value(); v != 1 {
		t.Errorf("drops = %d, want 1", v)
	}
	if v := m.Gauge("sockets").Value(); v != 9 {
		t.Errorf("sockets = %d, want 9", v)
	}
	h := m.Histogram("lat", nil)
	if h.Count() != 3 || h.Sum() != 555 {
		t.Errorf("lat count=%d sum=%d, want 3/555", h.Count(), h.Sum())
	}
	if c := h.Counts(); c[0] != 1 || c[1] != 1 || c[2] != 1 {
		t.Errorf("lat buckets = %v, want [1 1 1]", c)
	}
}

// TestMergeOrderIndependent pins the property the sharded snapshot
// depends on: folding registries in any order yields byte-identical
// text output.
func TestMergeOrderIndependent(t *testing.T) {
	mk := func(n int64) *Registry {
		r := NewRegistry()
		r.Counter("c").Add(n)
		r.Gauge("g").Add(n * 2)
		r.Histogram("h", []int64{1, 10}).Observe(n)
		return r
	}
	dump := func(r *Registry) string {
		var sb strings.Builder
		if err := r.WriteText(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	fwd := NewRegistry()
	rev := NewRegistry()
	regs := []*Registry{mk(1), mk(5), mk(9)}
	for _, r := range regs {
		fwd.Merge(r)
	}
	for i := len(regs) - 1; i >= 0; i-- {
		rev.Merge(regs[i])
	}
	if a, b := dump(fwd), dump(rev); a != b {
		t.Errorf("merge order changed the dump:\n%s\nvs\n%s", a, b)
	}
}

// TestMergeBoundsMismatchPanics pins the incomparable-buckets guard.
func TestMergeBoundsMismatchPanics(t *testing.T) {
	a := NewRegistry()
	a.Histogram("h", []int64{1, 2})
	b := NewRegistry()
	b.Histogram("h", []int64{1, 3})
	defer func() {
		if recover() == nil {
			t.Fatal("bounds mismatch did not panic")
		}
	}()
	a.Merge(b)
}

func TestMergeNilSafe(t *testing.T) {
	var r *Registry
	r.Merge(NewRegistry()) // no panic
	NewRegistry().Merge(nil)
}
