package obs

// Merge folds src's instruments into r: counters and gauges sum,
// histograms add bucket-wise. Merging is the sharded kernel's metrics
// story — each cell engine owns a private registry during the run, and
// the coordinator folds them into one snapshot afterwards — so the
// result must be deterministic: addition is commutative and associative,
// and the merged registry's Snapshot/WriteText output depends only on
// the multiset of (name, value) pairs, never on merge order.
//
// Histogram bounds must match instrument-for-instrument; a mismatch
// means two shards registered the same name with different shapes, which
// is a model bug, and Merge panics rather than fold incomparable
// buckets. Gauges sum too: sharded gauges are per-cell levels (open
// sockets on this cell's nodes), and the cluster-wide level is their
// sum.
func (r *Registry) Merge(src *Registry) {
	if r == nil || src == nil {
		return
	}
	for name, c := range src.counters {
		r.Counter(name).Add(c.Value())
	}
	for name, g := range src.gauges {
		r.Gauge(name).Add(g.Value())
	}
	for name, h := range src.hists {
		dst := r.Histogram(name, h.Bounds())
		if len(dst.bounds) != len(h.bounds) {
			panic("obs: Merge histogram " + name + ": bucket count mismatch")
		}
		for i, b := range dst.bounds {
			if b != h.bounds[i] {
				panic("obs: Merge histogram " + name + ": bucket bounds mismatch")
			}
		}
		dst.count += h.count
		dst.sum += h.sum
		for i, c := range h.counts {
			dst.counts[i] += c
		}
	}
}
