package obs_test

// Edge-case coverage for the Chrome exporter and registry merge: the
// shapes a degraded or partial recording can contain — orphan parent
// ids, zero-duration spans, instant-only traces — must still serialize
// to valid, byte-stable JSON, because the chaos harness exports traces
// from runs whose whole point is that things went wrong.

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"eslurm/internal/obs"
)

// chromeDoc mirrors the exported document shape for validity checks.
type chromeDoc struct {
	TraceEvents []struct {
		Ph   string                     `json:"ph"`
		ID   string                     `json:"id"`
		PID  int                        `json:"pid"`
		TS   json.Number                `json:"ts"`
		Name string                     `json:"name"`
		Args map[string]json.RawMessage `json:"args"`
	} `json:"traceEvents"`
}

func exportOne(t *testing.T, tr *obs.Tracer) (string, chromeDoc) {
	t.Helper()
	var buf bytes.Buffer
	if err := obs.WriteChrome(&buf, obs.Process{PID: 0, Name: "edge", T: tr}); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	return buf.String(), doc
}

// TestWriteChromeOrphanParent: a span recorded with a parent id that was
// never created still exports — the dangling ref is written as-is and
// the document stays valid JSON (viewers drop the unresolvable link, the
// critpath analyzer counts it as an orphan root).
func TestWriteChromeOrphanParent(t *testing.T) {
	c := &fakeClock{}
	tr := obs.NewTracer(c.Now)
	s := tr.Start("comm.send", obs.SpanID(99), obs.Int("to", 3))
	c.now = time.Microsecond
	tr.End(s)

	out, doc := exportOne(t, tr)
	if !strings.Contains(out, `"parent":"p0.99"`) {
		t.Errorf("orphan parent ref missing from export:\n%s", out)
	}
	if len(doc.TraceEvents) != 3 { // process_name meta + b + e
		t.Errorf("got %d records, want 3:\n%s", len(doc.TraceEvents), out)
	}
}

// TestWriteChromeZeroDurationSpan: begin and end at the same virtual
// instant serialize as distinct records with identical timestamps.
func TestWriteChromeZeroDurationSpan(t *testing.T) {
	c := &fakeClock{now: 5 * time.Microsecond}
	tr := obs.NewTracer(c.Now)
	s := tr.Start("fptree.plan", 0)
	tr.End(s) // clock not advanced

	out, doc := exportOne(t, tr)
	var b, e string
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "b":
			b = ev.TS.String()
		case "e":
			e = ev.TS.String()
		}
	}
	if b == "" || e == "" || b != e {
		t.Errorf("zero-duration span: begin ts %q, end ts %q (want equal, non-empty):\n%s", b, e, out)
	}
}

// TestWriteChromeInstantOnly: a recording holding nothing but instants
// (a run where no span was ever opened) exports every instant as an "n"
// record, alongside a nil-tracer process that contributes only its name.
func TestWriteChromeInstantOnly(t *testing.T) {
	c := &fakeClock{}
	tr := obs.NewTracer(c.Now)
	tr.Instant("predict.alert", 0, obs.Int("node", 4))
	c.now = 3 * time.Microsecond
	tr.Instant("sched.crash", 0)

	var buf bytes.Buffer
	err := obs.WriteChrome(&buf,
		obs.Process{PID: 0, Name: "instants", T: tr},
		obs.Process{PID: 1, Name: "empty", T: nil},
	)
	if err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	var instants, metas int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "n":
			instants++
		case "M":
			metas++
		}
	}
	if instants != 2 || metas != 2 {
		t.Errorf("got %d instants and %d metadata records, want 2 and 2:\n%s",
			instants, metas, buf.String())
	}
}

// TestMergeIntoEmptyAndTwice: folding into a fresh registry reproduces
// the source snapshot byte-for-byte, and folding the same source twice
// doubles every instrument — the sum semantics the sharded coordinator
// relies on when cells contribute one registry each.
func TestMergeIntoEmptyAndTwice(t *testing.T) {
	src := obs.NewRegistry()
	src.Counter("comm.delivered").Add(7)
	src.Gauge("comm.outstanding_sends").Add(3)
	h := src.Histogram("comm.broadcast_elapsed_ns", []int64{10, 100})
	h.Observe(5)
	h.Observe(50)

	dst := obs.NewRegistry()
	dst.Merge(src)
	var a, b bytes.Buffer
	if err := src.WriteText(&a); err != nil {
		t.Fatal(err)
	}
	if err := dst.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("merge into empty registry is not an identity:\n%s\nvs\n%s", a.String(), b.String())
	}

	dst.Merge(src)
	if got, want := dst.Counter("comm.delivered").Value(), int64(14); got != want {
		t.Errorf("counter after double merge = %d, want %d", got, want)
	}
	if got, want := dst.Gauge("comm.outstanding_sends").Value(), int64(6); got != want {
		t.Errorf("gauge after double merge = %d, want %d", got, want)
	}
}
