package obs_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"eslurm/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files")

// buildFixtureTracer records a small fixed scenario covering every
// record shape: root + child spans, a retry instant, attributes added
// after Start, an open span, and sub-microsecond timestamps.
func buildFixtureTracer() *obs.Tracer {
	c := &fakeClock{}
	tr := obs.NewTracer(c.Now)
	root := tr.Start("master.broadcast", 0, obs.Int("targets", 2))
	c.now = 100 * time.Microsecond
	s1 := tr.Start("comm.send", root, obs.Int("to", 7))
	c.now = 100*time.Microsecond + 250*time.Nanosecond
	tr.Instant("comm.retry", s1, obs.Int("attempt", 2))
	c.now = 230 * time.Microsecond
	tr.SetAttr(s1, "ok", "true")
	tr.End(s1)
	c.now = 400 * time.Microsecond
	tr.SetAttrInt(root, "delivered", 2)
	tr.End(root)
	tr.Start("comm.send", root, obs.Int("to", 9)) // left open
	return tr
}

func TestWriteChromeGolden(t *testing.T) {
	var buf bytes.Buffer
	err := obs.WriteChrome(&buf,
		obs.Process{PID: 0, Name: "seed 1", T: buildFixtureTracer()},
		obs.Process{PID: 1, Name: "empty", T: nil},
	)
	if err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "chrome_golden.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("chrome export drifted from golden (re-run with -update if intended):\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}

	// The golden must stay a valid trace_event document.
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	// 2 process_name rows + b/e + b/e + n + open b = 8 records.
	if len(doc.TraceEvents) != 8 {
		t.Fatalf("traceEvents count = %d, want 8", len(doc.TraceEvents))
	}
	phases := map[string]int{}
	for _, ev := range doc.TraceEvents {
		phases[ev["ph"].(string)]++
	}
	if phases["M"] != 2 || phases["b"] != 3 || phases["e"] != 2 || phases["n"] != 1 {
		t.Fatalf("phase mix %v", phases)
	}
}

func TestWriteChromeIsByteStable(t *testing.T) {
	var a, b bytes.Buffer
	if err := obs.WriteChrome(&a, obs.Process{PID: 3, Name: "x", T: buildFixtureTracer()}); err != nil {
		t.Fatal(err)
	}
	if err := obs.WriteChrome(&b, obs.Process{PID: 3, Name: "x", T: buildFixtureTracer()}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two identical recordings exported different bytes")
	}
}
