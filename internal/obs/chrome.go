package obs

// Chrome trace_event JSON export (the "JSON Array Format" with async
// nestable events), loadable in chrome://tracing and Perfetto.
//
// Spans become async "b"/"e" pairs rather than "X" complete events:
// sibling spans in a discrete-event simulation overlap freely (a star
// broadcast opens one send span per target at the same virtual instant),
// which the synchronous call-stack model of "X" events cannot represent.
// Every span gets a globally unique id ("p<pid>.<span>"), so viewers
// never mis-pair begins and ends across processes; the parent link rides
// in args.parent.
//
// The writer emits records in the tracer's chronological op order with
// hand-formatted timestamps (virtual nanoseconds rendered as microsecond
// strings), so the same recording always serializes to the same bytes —
// the property the digest-pinned determinism tests rely on.

import (
	"encoding/json"
	"io"
	"strconv"
	"time"
)

// Process names one tracer in a multi-process export. The chaos soak
// maps each seed to a process so Perfetto shows seeds side by side.
type Process struct {
	// PID is the trace-level process id; keep them distinct per process.
	PID int
	// Name labels the process track ("seed 3", "engine 0").
	Name string
	// T is the recording; a nil tracer contributes only its name row.
	T *Tracer
}

// WriteChrome writes one Chrome trace_event JSON document containing
// every process's spans. Output is byte-stable: same recordings, same
// bytes.
func WriteChrome(w io.Writer, procs ...Process) error {
	cw := &chromeWriter{w: w}
	cw.raw("{\"traceEvents\":[\n")
	first := true
	sep := func() {
		if !first {
			cw.raw(",\n")
		}
		first = false
	}
	for _, p := range procs {
		sep()
		cw.raw(`{"ph":"M","name":"process_name","pid":`)
		cw.raw(strconv.Itoa(p.PID))
		cw.raw(`,"tid":0,"args":{"name":`)
		cw.str(p.Name)
		cw.raw("}}")
		if p.T == nil {
			continue
		}
		for _, o := range p.T.ops {
			sep()
			cw.event(p.PID, p.T, o)
		}
	}
	cw.raw("\n]}\n")
	return cw.err
}

// chromeWriter accumulates the first write error so call sites stay
// linear (the errdrop discipline without a check per Fprintf).
type chromeWriter struct {
	w   io.Writer
	err error
}

func (c *chromeWriter) raw(s string) {
	if c.err != nil {
		return
	}
	_, c.err = io.WriteString(c.w, s)
}

// str writes a JSON-escaped string literal.
func (c *chromeWriter) str(s string) {
	if c.err != nil {
		return
	}
	b, err := json.Marshal(s)
	if err != nil {
		c.err = err
		return
	}
	_, c.err = c.w.Write(b)
}

// event writes one trace record for op o of tracer t under pid.
func (c *chromeWriter) event(pid int, t *Tracer, o op) {
	sp := &t.spans[o.span-1]
	ph := "b"
	switch o.kind {
	case opEnd:
		ph = "e"
	case opInstant:
		ph = "n"
	}
	c.raw(`{"ph":"`)
	c.raw(ph)
	c.raw(`","cat":"eslurm","id":"`)
	c.raw(spanRef(pid, o.span))
	c.raw(`","pid":`)
	c.raw(strconv.Itoa(pid))
	c.raw(`,"tid":0,"ts":`)
	c.raw(microTS(o.at))
	c.raw(`,"name":`)
	c.str(sp.Name)
	if o.kind != opEnd && (sp.Parent != 0 || len(sp.Attrs) > 0) {
		c.raw(`,"args":{`)
		comma := false
		if sp.Parent != 0 {
			c.raw(`"parent":"`)
			c.raw(spanRef(pid, sp.Parent))
			c.raw(`"`)
			comma = true
		}
		for _, a := range sp.Attrs {
			if comma {
				c.raw(",")
			}
			comma = true
			c.str(a.Key)
			c.raw(":")
			c.str(a.Value)
		}
		c.raw("}")
	}
	c.raw("}")
}

// spanRef renders the globally unique async-event id for a span.
func spanRef(pid int, id SpanID) string {
	return "p" + strconv.Itoa(pid) + "." + strconv.Itoa(int(id))
}

// microTS renders virtual nanoseconds as the microsecond timestamp the
// trace_event format expects, with fixed three-digit fractions so the
// bytes never depend on float formatting.
func microTS(at time.Duration) string {
	n := int64(at)
	return strconv.FormatInt(n/1000, 10) + "." + pad3(n%1000)
}

func pad3(n int64) string {
	s := strconv.FormatInt(n, 10)
	for len(s) < 3 {
		s = "0" + s
	}
	return s
}
