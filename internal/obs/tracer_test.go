package obs_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"eslurm/internal/obs"
)

// fakeClock is a settable virtual clock for tracer tests, so goldens
// don't depend on any engine behavior.
type fakeClock struct{ now time.Duration }

func (c *fakeClock) Now() time.Duration { return c.now }

func TestNilTracerIsInert(t *testing.T) {
	var tr *obs.Tracer
	id := tr.Start("x", 0)
	if id != 0 {
		t.Fatalf("nil tracer Start returned %d, want 0", id)
	}
	tr.SetAttr(id, "k", "v")
	tr.SetAttrInt(id, "k", 1)
	tr.End(id)
	tr.Instant("y", id)
	if tr.Len() != 0 || tr.Spans() != nil {
		t.Fatalf("nil tracer recorded something: len=%d", tr.Len())
	}
	var buf bytes.Buffer
	if err := tr.WriteText(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil tracer WriteText: err=%v len=%d", err, buf.Len())
	}
	if tr.Digest() != 0 {
		t.Fatalf("nil tracer digest %x, want 0", tr.Digest())
	}
}

func TestTracerChronologicalDump(t *testing.T) {
	c := &fakeClock{}
	tr := obs.NewTracer(c.Now)
	root := tr.Start("broadcast", 0, obs.Int("targets", 2))
	c.now = 5 * time.Nanosecond
	child := tr.Start("send", root)
	tr.Instant("retry", child, obs.Int("attempt", 2))
	c.now = 9 * time.Nanosecond
	tr.SetAttr(child, "ok", "true")
	tr.End(child)
	c.now = 12 * time.Nanosecond
	tr.End(root)
	// Ending twice is absorbed.
	tr.End(root)

	var buf bytes.Buffer
	if err := tr.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"b 0 1 broadcast targets=2",
		"b 5 2 send parent=1 ok=true",
		"i 5 3 retry parent=2 attempt=2",
		"e 9 2 send",
		"e 12 1 broadcast",
		"",
	}, "\n")
	if got := buf.String(); got != want {
		t.Fatalf("dump mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tr.Len())
	}
	sp := tr.Spans()[0]
	if !sp.Ended || sp.End != 12*time.Nanosecond || sp.Start != 0 {
		t.Fatalf("root span wrong: %+v", sp)
	}
}

func TestTracerOpenSpanStaysOpen(t *testing.T) {
	c := &fakeClock{}
	tr := obs.NewTracer(c.Now)
	id := tr.Start("never-ends", 0)
	if sp := tr.Spans()[id-1]; sp.Ended {
		t.Fatal("span reported ended without End")
	}
	var buf bytes.Buffer
	if err := tr.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "e ") {
		t.Fatalf("open span emitted an end record: %q", buf.String())
	}
}

func TestTracerDigestDistinguishesRecordings(t *testing.T) {
	run := func(extra bool) uint64 {
		c := &fakeClock{}
		tr := obs.NewTracer(c.Now)
		id := tr.Start("a", 0)
		c.now = time.Microsecond
		if extra {
			tr.Instant("blip", id)
		}
		tr.End(id)
		return tr.Digest()
	}
	if run(false) != run(false) {
		t.Fatal("identical recordings digest differently")
	}
	if run(false) == run(true) {
		t.Fatal("different recordings digest identically")
	}
}
