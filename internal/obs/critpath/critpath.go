// Package critpath answers the question the span layer only records:
// which hop made this broadcast slow? The paper's scaling argument is
// that broadcast latency at scale is dominated by a handful of hops —
// rebuilds, retries, slow links — so the reproduction needs per-component
// latency attribution, not just end-to-end numbers. This package
// reconstructs the span DAG of a traced run (parent links plus the
// cross-component hand-off edges comm/fptree/master emit), computes the
// critical path of every root span — the backward last-finisher chain
// through broadcast → task → plan/build → send/retry/adopt that
// determined the root's end time — and aggregates the attribution per
// group (campaign × root kind × structure × scale) into a byte-stable
// report. Diff aligns two reports and says which span kinds gained or
// lost simulated time — the regression-hunting primitive the perf gate
// cannot provide.
//
// Determinism contract: analysis is a pure function of the input spans.
// Every walk is over id- or explicitly-sorted orders, no map iteration
// reaches the output, and no clocks or RNG streams are read — the same
// recording always yields byte-identical report text and digest. For
// sharded runs, FromCells flattens per-cell tracers in fixed cell order
// and resolves the cross-cell "xparent" hand-off attributes, so the
// merged DAG (and hence the report) is invariant under the worker count,
// exactly like the kernel digest it rides on.
package critpath

import (
	"sort"
	"strconv"
	"strings"
	"time"

	"eslurm/internal/obs"
)

// Source is one traced run contributing roots to an analysis.
type Source struct {
	// Label identifies the trace in path listings ("seed 3",
	// "fig7f engine 0 seed 42").
	Label string
	// Group is the aggregation prefix shared by comparable traces (the
	// campaign or experiment ID); the derived root/structure/targets
	// components are appended per root span.
	Group string
	// Spans is the recording, Tracer.Spans() order: the span at index i
	// has id i+1, and Parent values index into the same slice.
	Spans []obs.Span
}

// Options tunes an analysis. The zero value is usable.
type Options struct {
	// TopK bounds the slowest-critical-paths listing (default 5).
	TopK int
}

// FromCells flattens per-cell tracers into one span slice in cell order,
// remapping same-cell parent ids into the merged index space and
// resolving cross-cell "xparent" attributes (see obs.CellRef). Unresolvable
// references leave the span a root — Analyze then counts it normally.
// Cell order is the model's fixed partition, so for a deterministic
// sharded run the merged slice is byte-identical at any worker count.
// Nil tracers contribute nothing.
func FromCells(cells []*obs.Tracer) []obs.Span {
	offs := make([]int, len(cells))
	total := 0
	for i, t := range cells {
		offs[i] = total
		total += t.Len()
	}
	out := make([]obs.Span, 0, total)
	for ci, t := range cells {
		for _, sp := range t.Spans() {
			if sp.Parent != 0 {
				sp.Parent += obs.SpanID(offs[ci])
			} else if ref, ok := attrValue(sp.Attrs, "xparent"); ok {
				if p, ok := resolveCellRef(ref, cells, offs); ok {
					sp.Parent = p
				}
			}
			out = append(out, sp)
		}
	}
	return out
}

// resolveCellRef parses a CellRef against the cell layout, returning the
// merged-space parent id.
func resolveCellRef(ref string, cells []*obs.Tracer, offs []int) (obs.SpanID, bool) {
	if !strings.HasPrefix(ref, "c") {
		return 0, false
	}
	dot := strings.IndexByte(ref, '.')
	if dot < 0 {
		return 0, false
	}
	cell, err := strconv.Atoi(ref[1:dot])
	if err != nil || cell < 0 || cell >= len(cells) {
		return 0, false
	}
	id, err := strconv.Atoi(ref[dot+1:])
	if err != nil || id < 1 || id > cells[cell].Len() {
		return 0, false
	}
	return obs.SpanID(offs[cell] + id), true
}

func attrValue(attrs []obs.Attr, key string) (string, bool) {
	for _, a := range attrs {
		if a.Key == key {
			return a.Value, true
		}
	}
	return "", false
}

// node is the analysis view of one span.
type node struct {
	name           string
	start, end     time.Duration
	ended, instant bool
	parent         int // 0 = root, else 1-based id into the same slice
	children       []int32
	root           int  // 1-based id of this span's root ancestor
	hasRetry       bool // carries at least one comm.retry instant child
	rebuild        bool // fptree.plan/build that is not its root's first
}

// analysis is the per-source working state.
type analysis struct {
	nodes []node
	// critKids caches, per span, its ended non-instant children sorted by
	// (End desc, Start desc, id desc) — the tie-break rule of the
	// backward walk, documented in DESIGN.md §8.
	critKids map[int][]int32
	self     map[int]time.Duration // per-root scratch: attributed self time
}

// Analyze computes the critical-path report over the given sources.
func Analyze(sources []Source, opt Options) *Report {
	if opt.TopK <= 0 {
		opt.TopK = 5
	}
	rep := &Report{Sources: len(sources), TopK: opt.TopK}
	groups := make(map[string]*Group)
	var paths []Path

	for _, src := range sources {
		a := build(src.Spans, rep)
		// Per-root bookkeeping computed in one ascending pass each:
		// retry/adopt counts, structure discovery, rebuild marking.
		retries := make(map[int]int)
		adopts := make(map[int]int)
		structOf := make(map[int]string)
		for i := range a.nodes {
			n := &a.nodes[i]
			switch n.name {
			case "comm.retry":
				retries[n.root]++
			case "comm.adopt":
				adopts[n.root]++
			case "comm.broadcast":
				if _, seen := structOf[n.root]; !seen {
					if s, ok := attrValue(src.Spans[i].Attrs, "structure"); ok {
						structOf[n.root] = s
					}
				}
			}
		}

		for i := range a.nodes {
			n := &a.nodes[i]
			if n.parent != 0 || n.instant {
				continue
			}
			if !n.ended {
				rep.Open++
				continue
			}
			id := i + 1
			key := groupKey(src.Group, n.name, structOf[id], src.Spans[i].Attrs)
			g, ok := groups[key]
			if !ok {
				g = &Group{Key: key, kinds: make(map[string]*KindAttr)}
				groups[key] = g
			}

			clear(a.self)
			spine := []int{id}
			a.attribute(id, n.start, n.end, &spine)

			dur := n.end - n.start
			g.Roots++
			g.Time += dur
			if dur > g.Max {
				g.Max = dur
			}
			g.Retries += retries[id]
			g.Adopts += adopts[id]
			for sid, d := range a.self {
				sn := &a.nodes[sid-1]
				k, ok := g.kinds[sn.name]
				if !ok {
					k = &KindAttr{Name: sn.name}
					g.kinds[sn.name] = k
				}
				k.Time += d
				k.Segs++
				if sn.hasRetry {
					g.RetryTime += d
				}
				if sn.rebuild {
					g.RebuildTime += d
				}
			}

			chain := make([]Hop, 0, len(spine))
			for _, sid := range spine {
				chain = append(chain, Hop{Name: a.nodes[sid-1].name, Self: a.self[sid]})
			}
			paths = append(paths, Path{
				Dur: dur, Label: src.Label, Group: key, Chain: chain,
				start: n.start, order: id,
			})
		}
	}

	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		g := groups[k]
		names := make([]string, 0, len(g.kinds))
		for name := range g.kinds {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			g.Kinds = append(g.Kinds, *g.kinds[name])
		}
		g.kinds = nil
		rep.Groups = append(rep.Groups, *g)
		rep.Roots += g.Roots
		rep.Total += g.Time
		rep.RetryTime += g.RetryTime
		rep.RebuildTime += g.RebuildTime
		rep.Retries += g.Retries
		rep.Adopts += g.Adopts
	}

	sort.Slice(paths, func(i, j int) bool {
		a, b := paths[i], paths[j]
		if a.Dur != b.Dur {
			return a.Dur > b.Dur
		}
		if a.Group != b.Group {
			return a.Group < b.Group
		}
		if a.Label != b.Label {
			return a.Label < b.Label
		}
		if a.start != b.start {
			return a.start < b.start
		}
		return a.order < b.order
	})
	if len(paths) > opt.TopK {
		paths = paths[:opt.TopK]
	}
	rep.Paths = paths
	return rep
}

// groupKey derives a root span's aggregation key: the source group plus
// the root kind, plus structure and scale when the subtree carries them.
func groupKey(prefix, rootName, structure string, rootAttrs []obs.Attr) string {
	key := prefix + " root=" + rootName
	if structure != "" {
		key += " structure=" + structure
	}
	if tg, ok := attrValue(rootAttrs, "targets"); ok {
		key += " targets=" + tg
	}
	return key
}

// build constructs the analysis DAG for one source, folding span counts
// and orphan/instant tallies into rep.
func build(spans []obs.Span, rep *Report) *analysis {
	a := &analysis{
		nodes:    make([]node, len(spans)),
		critKids: make(map[int][]int32),
		self:     make(map[int]time.Duration),
	}
	rep.Spans += len(spans)
	seenPlan := make(map[int]bool)
	seenBuild := make(map[int]bool)
	for i, sp := range spans {
		id := i + 1
		parent := int(sp.Parent)
		if parent < 0 || parent >= id {
			// An orphan reference: the parent id never resolves inside
			// this recording (a stale or cross-tracer id). The span is
			// analyzed as a root.
			if parent != 0 {
				rep.Orphans++
			}
			parent = 0
		}
		n := &a.nodes[i]
		n.name, n.parent = sp.Name, parent
		n.start, n.end = sp.Start, sp.End
		n.ended, n.instant = sp.Ended, sp.Instant
		if sp.Instant {
			rep.Instants++
			n.end = sp.Start
		}
		if parent == 0 {
			n.root = id
		} else {
			n.root = a.nodes[parent-1].root
			a.nodes[parent-1].children = append(a.nodes[parent-1].children, int32(id))
			if sp.Instant && sp.Name == "comm.retry" {
				a.nodes[parent-1].hasRetry = true
			}
		}
		// Rebuild rule: the first fptree.plan/fptree.build in a root's
		// subtree is the broadcast's own construction; every later one
		// exists because a reallocation or adoption forced a re-plan.
		switch sp.Name {
		case "fptree.plan":
			if seenPlan[n.root] {
				n.rebuild = true
			}
			seenPlan[n.root] = true
		case "fptree.build":
			if seenBuild[n.root] {
				n.rebuild = true
			}
			seenBuild[n.root] = true
		}
	}
	return a
}

// kids returns id's ended, non-instant children sorted by the backward
// walk's order: End descending, then Start descending, then id
// descending (the latest-finishing, most-immediate, latest-created child
// wins ties).
func (a *analysis) kids(id int) []int32 {
	if ks, ok := a.critKids[id]; ok {
		return ks
	}
	var ks []int32
	for _, c := range a.nodes[id-1].children {
		n := &a.nodes[c-1]
		if n.ended && !n.instant {
			ks = append(ks, c)
		}
	}
	sort.Slice(ks, func(i, j int) bool {
		x, y := &a.nodes[ks[i]-1], &a.nodes[ks[j]-1]
		if x.end != y.end {
			return x.end > y.end
		}
		if x.start != y.start {
			return x.start > y.start
		}
		return ks[i] > ks[j]
	})
	a.critKids[id] = ks
	return ks
}

// attribute partitions [from, to] of span id between the span itself and
// its critical descendants: walking backward from `to`, the latest-
// finishing child not past the frontier owns the interval up to its end,
// recursively; the gaps belong to the span. The first child descended
// into from a spine node extends the spine — the chain that determined
// the root's end time.
func (a *analysis) attribute(id int, from, to time.Duration, spine *[]int) {
	t := to
	onSpine := spine != nil
	for _, c := range a.kids(id) {
		n := &a.nodes[c-1]
		if n.end <= from {
			break // sorted by end desc: nothing later can contribute
		}
		if n.end > t {
			continue // finished after the frontier: not a last finisher
		}
		a.addSelf(id, t-n.end)
		cFrom := n.start
		if cFrom < from {
			cFrom = from
		}
		if onSpine {
			*spine = append(*spine, int(c))
			a.attribute(int(c), cFrom, n.end, spine)
			onSpine = false
		} else {
			a.attribute(int(c), cFrom, n.end, nil)
		}
		t = cFrom
		if t <= from {
			return
		}
	}
	a.addSelf(id, t-from)
}

func (a *analysis) addSelf(id int, d time.Duration) {
	if d > 0 {
		a.self[id] += d
	}
}
