package critpath

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// DiffReport is the comparison of two critical-path reports: per-group,
// per-kind deltas of attributed simulated time, with a movers ranking
// (largest absolute kind-level shift first). Group and kind alignment
// is by name over the union of both reports, so disjoint span sets diff
// cleanly — a kind present on only one side shows its full time as the
// delta.
type DiffReport struct {
	A, B   string // labels for the two sides
	Groups []GroupDiff
	Movers []Mover // every kind-level delta, |delta| descending
}

// GroupDiff aligns one group key across the two reports. A side that
// lacks the group contributes zeros.
type GroupDiff struct {
	Key            string
	InA, InB       bool
	RootsA, RootsB int
	TimeA, TimeB   time.Duration
	RetryA, RetryB time.Duration
	RebldA, RebldB time.Duration
	Kinds          []KindDiff // sorted by name
}

// KindDiff is one span kind's attributed time on each side.
type KindDiff struct {
	Name         string
	TimeA, TimeB time.Duration
	SegsA, SegsB int
}

// Delta returns B − A: positive means the kind got slower.
func (k *KindDiff) Delta() time.Duration { return k.TimeB - k.TimeA }

// Mover names one kind-level shift for the ranking.
type Mover struct {
	Group, Kind string
	Delta       time.Duration
}

// Diff aligns two reports by group key and kind name.
func Diff(a, b *Report, labelA, labelB string) *DiffReport {
	d := &DiffReport{A: labelA, B: labelB}
	keys := unionKeys(a, b)
	ga := groupIndex(a)
	gb := groupIndex(b)
	for _, key := range keys {
		pa, inA := ga[key]
		pb, inB := gb[key]
		gd := GroupDiff{Key: key, InA: inA, InB: inB}
		kinds := make(map[string]*KindDiff)
		if inA {
			gd.RootsA, gd.TimeA, gd.RetryA, gd.RebldA = pa.Roots, pa.Time, pa.RetryTime, pa.RebuildTime
			for _, k := range pa.Kinds {
				kinds[k.Name] = &KindDiff{Name: k.Name, TimeA: k.Time, SegsA: k.Segs}
			}
		}
		if inB {
			gd.RootsB, gd.TimeB, gd.RetryB, gd.RebldB = pb.Roots, pb.Time, pb.RetryTime, pb.RebuildTime
			for _, k := range pb.Kinds {
				kd, ok := kinds[k.Name]
				if !ok {
					kd = &KindDiff{Name: k.Name}
					kinds[k.Name] = kd
				}
				kd.TimeB, kd.SegsB = k.Time, k.Segs
			}
		}
		names := make([]string, 0, len(kinds))
		for n := range kinds {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			kd := *kinds[n]
			gd.Kinds = append(gd.Kinds, kd)
			if kd.Delta() != 0 {
				d.Movers = append(d.Movers, Mover{Group: key, Kind: n, Delta: kd.Delta()})
			}
		}
		d.Groups = append(d.Groups, gd)
	}
	sort.Slice(d.Movers, func(i, j int) bool {
		x, y := d.Movers[i], d.Movers[j]
		ax, ay := x.Delta, y.Delta
		if ax < 0 {
			ax = -ax
		}
		if ay < 0 {
			ay = -ay
		}
		if ax != ay {
			return ax > ay
		}
		if x.Group != y.Group {
			return x.Group < y.Group
		}
		return x.Kind < y.Kind
	})
	return d
}

// WriteText emits the byte-stable diff. Format:
//
//	critpath diff A="..." B="..."
//	group "KEY" roots A/B time A -> B (delta)   [only-in-A / only-in-B noted]
//	  kind NAME A -> B (delta)
//	movers:
//	  1. KEY NAME delta
func (d *DiffReport) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "critpath diff A=%q B=%q\n", d.A, d.B)
	for gi := range d.Groups {
		g := &d.Groups[gi]
		note := ""
		if !g.InA {
			note = " (only in B)"
		} else if !g.InB {
			note = " (only in A)"
		}
		fmt.Fprintf(bw, "group %q roots %d/%d time %v -> %v (%s)%s\n",
			g.Key, g.RootsA, g.RootsB, g.TimeA, g.TimeB, fmtDelta(g.TimeB-g.TimeA), note)
		if rd := (g.RetryB - g.RetryA); rd != 0 || g.RetryA != 0 || g.RetryB != 0 {
			fmt.Fprintf(bw, "  retry %v -> %v (%s)\n", g.RetryA, g.RetryB, fmtDelta(rd))
		}
		if rd := (g.RebldB - g.RebldA); rd != 0 || g.RebldA != 0 || g.RebldB != 0 {
			fmt.Fprintf(bw, "  rebuild %v -> %v (%s)\n", g.RebldA, g.RebldB, fmtDelta(rd))
		}
		for _, k := range g.Kinds {
			fmt.Fprintf(bw, "  kind %s %v -> %v (%s) segs %d/%d\n",
				k.Name, k.TimeA, k.TimeB, fmtDelta(k.Delta()), k.SegsA, k.SegsB)
		}
	}
	if len(d.Movers) > 0 {
		fmt.Fprintln(bw, "movers:")
		for i, m := range d.Movers {
			fmt.Fprintf(bw, "  %d. %q %s %s\n", i+1, m.Group, m.Kind, fmtDelta(m.Delta))
		}
	}
	return bw.Flush()
}

// String returns the WriteText form.
func (d *DiffReport) String() string {
	var b strings.Builder
	_ = d.WriteText(&b)
	return b.String()
}

// fmtDelta renders a signed duration with an explicit + on gains, so
// "got slower" reads unambiguously in the diff.
func fmtDelta(d time.Duration) string {
	if d >= 0 {
		return "+" + d.String()
	}
	return d.String()
}

func unionKeys(a, b *Report) []string {
	seen := make(map[string]bool)
	var keys []string
	for _, r := range []*Report{a, b} {
		for i := range r.Groups {
			k := r.Groups[i].Key
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
	}
	sort.Strings(keys)
	return keys
}

func groupIndex(r *Report) map[string]*Group {
	m := make(map[string]*Group, len(r.Groups))
	for i := range r.Groups {
		m[r.Groups[i].Key] = &r.Groups[i]
	}
	return m
}
