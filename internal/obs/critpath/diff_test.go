package critpath_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"eslurm/internal/obs"
	"eslurm/internal/obs/critpath"
)

func TestDiffDisjointSpanSets(t *testing.T) {
	// A and B share no span kinds and no group keys: every group is
	// one-sided, and every kind shows its full time as the delta.
	a := critpath.Analyze([]critpath.Source{{Label: "a", Group: "ga", Spans: []obs.Span{
		span("master.broadcast", 0, 0, 100),
		span("comm.send", 1, 10, 90),
	}}}, critpath.Options{})
	b := critpath.Analyze([]critpath.Source{{Label: "b", Group: "gb", Spans: []obs.Span{
		span("sched.job", 0, 0, 200),
		span("fptree.plan", 1, 50, 180),
	}}}, critpath.Options{})

	d := critpath.Diff(a, b, "runA", "runB")
	if len(d.Groups) != 2 {
		t.Fatalf("groups = %d, want 2\n%s", len(d.Groups), d.String())
	}
	text := d.String()
	if !strings.Contains(text, "(only in A)") || !strings.Contains(text, "(only in B)") {
		t.Fatalf("one-sided groups not flagged:\n%s", text)
	}
	// Every kind delta is the kind's full time, signed by side.
	for _, g := range d.Groups {
		for _, k := range g.Kinds {
			if g.InA && !g.InB && (k.TimeB != 0 || k.Delta() != -k.TimeA) {
				t.Errorf("A-only kind %s: delta %v, want %v", k.Name, k.Delta(), -k.TimeA)
			}
			if g.InB && !g.InA && (k.TimeA != 0 || k.Delta() != k.TimeB) {
				t.Errorf("B-only kind %s: delta %v, want %v", k.Name, k.Delta(), k.TimeB)
			}
		}
	}
	// Movers ranked by |delta|: fptree.plan's +130ns outranks
	// comm.send's -80ns regardless of sign.
	if len(d.Movers) != 4 || d.Movers[0].Kind != "fptree.plan" || d.Movers[1].Kind != "comm.send" {
		t.Fatalf("mover ranking %+v, want fptree.plan then comm.send\n%s", d.Movers, text)
	}
}

func TestDiffSharedGroups(t *testing.T) {
	mk := func(sendEnd time.Duration) *critpath.Report {
		return critpath.Analyze([]critpath.Source{{Label: "s", Group: "soak", Spans: []obs.Span{
			span("master.broadcast", 0, 0, 100),
			span("comm.send", 1, 10, sendEnd),
		}}}, critpath.Options{})
	}
	d := critpath.Diff(mk(60), mk(90), "before", "after")
	if len(d.Groups) != 1 {
		t.Fatalf("groups = %d, want 1", len(d.Groups))
	}
	g := d.Groups[0]
	if !g.InA || !g.InB {
		t.Fatal("shared group flagged one-sided")
	}
	var send critpath.KindDiff
	for _, k := range g.Kinds {
		if k.Name == "comm.send" {
			send = k
		}
	}
	if send.Delta() != 30 {
		t.Errorf("comm.send delta = %v, want +30 (50 -> 80)", send.Delta())
	}
	if !strings.Contains(d.String(), "(+30ns)") {
		t.Errorf("delta not rendered with explicit +:\n%s", d.String())
	}
}

func TestDiffIdenticalReportsIsQuiet(t *testing.T) {
	src := []critpath.Source{{Label: "s", Group: "g", Spans: buildSeedTrace()}}
	a := critpath.Analyze(src, critpath.Options{})
	b := critpath.Analyze(src, critpath.Options{})
	d := critpath.Diff(a, b, "x", "y")
	if len(d.Movers) != 0 {
		t.Fatalf("identical reports produced movers: %+v", d.Movers)
	}
	if strings.Contains(d.String(), "movers:") {
		t.Fatalf("quiet diff printed a movers section:\n%s", d.String())
	}
}

func TestDiffGolden(t *testing.T) {
	a := critpath.Analyze([]critpath.Source{{Label: "seed 1", Group: "soak", Spans: buildSeedTrace()}}, critpath.Options{})
	b := critpath.Analyze([]critpath.Source{{Label: "seed 1", Group: "soak", Spans: []obs.Span{
		span("master.broadcast", 0, 0, 40000, obs.Int("targets", 4)),
		span("comm.broadcast", 1, 100, 39000, obs.String("structure", "ktree"), obs.Int("targets", 4)),
		span("comm.send", 2, 200, 38000),
	}}}, critpath.Options{})
	got := critpath.Diff(a, b, "baseline", "candidate").String()

	golden := filepath.Join("testdata", "diff.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal([]byte(got), want) {
		t.Fatalf("diff drifted from golden (re-run with -update if intended):\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestDiffOverParsedReports(t *testing.T) {
	// The file-driven path cmd/critdiff uses: serialize both reports,
	// parse them back, diff the parsed forms. Must match the in-memory
	// diff byte for byte.
	a := critpath.Analyze([]critpath.Source{{Label: "seed 1", Group: "soak", Spans: buildSeedTrace()}}, critpath.Options{})
	b := critpath.Analyze([]critpath.Source{{Label: "b", Group: "other", Spans: []obs.Span{
		span("sched.job", 0, 0, 500),
	}}}, critpath.Options{})
	direct := critpath.Diff(a, b, "A", "B").String()

	pa, err := critpath.Parse(strings.NewReader(a.String()))
	if err != nil {
		t.Fatal(err)
	}
	pb, err := critpath.Parse(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	viaFiles := critpath.Diff(pa, pb, "A", "B").String()
	if direct != viaFiles {
		t.Fatalf("parsed-report diff differs from in-memory diff:\ndirect:\n%s\nvia files:\n%s", direct, viaFiles)
	}
}
