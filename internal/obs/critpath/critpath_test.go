package critpath_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"eslurm/internal/obs"
	"eslurm/internal/obs/critpath"
)

var update = flag.Bool("update", false, "rewrite golden files")

type fakeClock struct{ now time.Duration }

func (c *fakeClock) Now() time.Duration { return c.now }

// span builds one ended span for direct-slice tests.
func span(name string, parent obs.SpanID, start, end time.Duration, attrs ...obs.Attr) obs.Span {
	return obs.Span{Name: name, Parent: parent, Start: start, End: end, Ended: true, Attrs: attrs}
}

func instant(name string, parent obs.SpanID, at time.Duration) obs.Span {
	return obs.Span{Name: name, Parent: parent, Start: at, Instant: true}
}

func analyzeOne(t *testing.T, spans []obs.Span) *critpath.Report {
	t.Helper()
	return critpath.Analyze([]critpath.Source{{Label: "t", Group: "g", Spans: spans}}, critpath.Options{})
}

// kindTime pulls one kind's attributed time out of the only group.
func kindTime(t *testing.T, rep *critpath.Report, name string) time.Duration {
	t.Helper()
	if len(rep.Groups) != 1 {
		t.Fatalf("groups = %d, want 1\n%s", len(rep.Groups), rep.String())
	}
	for _, k := range rep.Groups[0].Kinds {
		if k.Name == name {
			return k.Time
		}
	}
	return 0
}

func TestBackwardWalkPartition(t *testing.T) {
	// root [0,100]; A [10,40]; B [30,90]. The backward walk attributes
	// (90,100] to root, (30,90] to B, and [0,30] back to root: A ends
	// past the frontier left by B's start, so it never claims time.
	spans := []obs.Span{
		span("master.broadcast", 0, 0, 100),
		span("a", 1, 10, 40),
		span("b", 1, 30, 90),
	}
	rep := analyzeOne(t, spans)
	if rep.Roots != 1 || rep.Total != 100 {
		t.Fatalf("roots=%d total=%v\n%s", rep.Roots, rep.Total, rep.String())
	}
	if got := kindTime(t, rep, "master.broadcast"); got != 40 {
		t.Errorf("root self = %v, want 40ns", got)
	}
	if got := kindTime(t, rep, "b"); got != 60 {
		t.Errorf("b self = %v, want 60ns", got)
	}
	if got := kindTime(t, rep, "a"); got != 0 {
		t.Errorf("a self = %v, want 0", got)
	}
	// Self times over the critical path partition the root exactly.
	var sum time.Duration
	for _, k := range rep.Groups[0].Kinds {
		sum += k.Time
	}
	if sum != 100 {
		t.Errorf("attribution sums to %v, want the root's 100ns", sum)
	}
	if len(rep.Paths) != 1 {
		t.Fatalf("paths = %d, want 1", len(rep.Paths))
	}
	wantChain := "master.broadcast[40ns]->b[60ns]"
	if got := rep.String(); !strings.Contains(got, wantChain) {
		t.Errorf("report missing chain %q:\n%s", wantChain, got)
	}
}

func TestNestedAttribution(t *testing.T) {
	// root [0,100] -> send [20,95] -> inner [30,90]: root gets
	// (95,100]+[0,20]=25, send gets (90,95]+(20,30]=15, inner gets 60.
	spans := []obs.Span{
		span("root", 0, 0, 100),
		span("send", 1, 20, 95),
		span("inner", 2, 30, 90),
	}
	rep := analyzeOne(t, spans)
	if got := kindTime(t, rep, "root"); got != 25 {
		t.Errorf("root = %v, want 25", got)
	}
	if got := kindTime(t, rep, "send"); got != 15 {
		t.Errorf("send = %v, want 15", got)
	}
	if got := kindTime(t, rep, "inner"); got != 60 {
		t.Errorf("inner = %v, want 60", got)
	}
}

func TestTieBreakRule(t *testing.T) {
	// Three children all ending at 80: the walk must pick max Start
	// first, then the highest id. Only "late" (start 50) wins the spine.
	spans := []obs.Span{
		span("root", 0, 0, 80),
		span("early", 1, 10, 80),
		span("late", 1, 50, 80),
		span("mid", 1, 30, 80),
	}
	rep := analyzeOne(t, spans)
	if got := kindTime(t, rep, "late"); got != 30 {
		t.Errorf("late = %v, want 30", got)
	}
	// After descending into late, the frontier is 50; mid and early end
	// at 80 > 50, so they are skipped and root keeps [0,50].
	if got := kindTime(t, rep, "root"); got != 50 {
		t.Errorf("root = %v, want 50", got)
	}

	// Same End and Start: the higher id (recorded later) wins.
	spans = []obs.Span{
		span("root", 0, 0, 80),
		span("first", 1, 50, 80),
		span("second", 1, 50, 80),
	}
	rep = analyzeOne(t, spans)
	if got := kindTime(t, rep, "second"); got != 30 {
		t.Errorf("second = %v, want 30", got)
	}
	if got := kindTime(t, rep, "first"); got != 0 {
		t.Errorf("first = %v, want 0", got)
	}
}

func TestZeroDurationAndInstantChildren(t *testing.T) {
	spans := []obs.Span{
		span("root", 0, 0, 100),
		span("zero", 1, 60, 60), // zero-duration: claims no self time
		instant("comm.retry", 1, 40),
		instant("note", 1, 70),
	}
	rep := analyzeOne(t, spans)
	if rep.Instants != 2 {
		t.Errorf("instants = %d, want 2", rep.Instants)
	}
	if got := kindTime(t, rep, "zero"); got != 0 {
		t.Errorf("zero-duration span claimed %v", got)
	}
	if got := kindTime(t, rep, "root"); got != 100 {
		t.Errorf("root = %v, want 100", got)
	}
	// The comm.retry child marks the root as retry-carrying: its whole
	// attributed time counts as retry time.
	if rep.RetryTime != 100 || rep.Retries != 1 {
		t.Errorf("retryTime=%v retries=%d, want 100/1", rep.RetryTime, rep.Retries)
	}
}

func TestOpenRootsAndOrphans(t *testing.T) {
	spans := []obs.Span{
		span("done", 0, 0, 50),
		{Name: "open", Start: 10},          // never ended: skipped, counted
		span("orphan", 99, 20, 40),         // parent id unresolvable: analyzed as root
		{Name: "fwd", Parent: 5, Start: 0}, // forward reference: also orphan (and open)
	}
	rep := analyzeOne(t, spans)
	if rep.Roots != 2 {
		t.Errorf("roots = %d, want 2 (done + orphan)", rep.Roots)
	}
	if rep.Open != 2 {
		t.Errorf("open = %d, want 2", rep.Open)
	}
	if rep.Orphans != 2 {
		t.Errorf("orphans = %d, want 2", rep.Orphans)
	}
	if rep.Total != 70 {
		t.Errorf("total = %v, want 70", rep.Total)
	}
}

func TestRebuildAttribution(t *testing.T) {
	// Two fptree.plan spans under one root: the first is construction,
	// the second is a rebuild; only the second's time counts as rebuild.
	spans := []obs.Span{
		span("master.broadcast", 0, 0, 100),
		span("fptree.plan", 1, 0, 10),
		span("fptree.plan", 1, 60, 100),
	}
	rep := analyzeOne(t, spans)
	if got := kindTime(t, rep, "fptree.plan"); got != 50 {
		t.Errorf("fptree.plan = %v, want 50 (10 + 40)", got)
	}
	if rep.RebuildTime != 40 {
		t.Errorf("rebuildTime = %v, want 40 (second plan only)", rep.RebuildTime)
	}
}

func TestGroupKeyStructureAndTargets(t *testing.T) {
	spans := []obs.Span{
		span("master.broadcast", 0, 0, 100, obs.Int("targets", 512)),
		span("comm.broadcast", 1, 5, 95, obs.String("structure", "fptree")),
	}
	rep := analyzeOne(t, spans)
	want := "g root=master.broadcast structure=fptree targets=512"
	if len(rep.Groups) != 1 || rep.Groups[0].Key != want {
		t.Fatalf("group key = %q, want %q", rep.Groups[0].Key, want)
	}
}

func TestAdoptCount(t *testing.T) {
	spans := []obs.Span{
		span("master.broadcast", 0, 0, 100),
		instant("comm.adopt", 1, 30),
		instant("comm.adopt", 1, 60),
	}
	rep := analyzeOne(t, spans)
	if rep.Adopts != 2 {
		t.Errorf("adopts = %d, want 2", rep.Adopts)
	}
}

func TestTopKBound(t *testing.T) {
	var spans []obs.Span
	for i := 0; i < 8; i++ {
		spans = append(spans, span("r", 0, 0, time.Duration(100+i)))
	}
	rep := critpath.Analyze([]critpath.Source{{Label: "t", Group: "g", Spans: spans}}, critpath.Options{TopK: 3})
	if len(rep.Paths) != 3 {
		t.Fatalf("paths = %d, want 3", len(rep.Paths))
	}
	// Slowest first.
	if rep.Paths[0].Dur != 107 || rep.Paths[2].Dur != 105 {
		t.Errorf("path durs = %v, %v; want 107, 105", rep.Paths[0].Dur, rep.Paths[2].Dur)
	}
}

// buildSeedTrace records a realistic two-broadcast scenario through a
// real Tracer, used by the golden and round-trip tests.
func buildSeedTrace() []obs.Span {
	c := &fakeClock{}
	tr := obs.NewTracer(c.Now)
	root := tr.Start("master.broadcast", 0, obs.Int("targets", 4))
	bc := tr.Start("comm.broadcast", root, obs.String("structure", "ktree"), obs.Int("targets", 4))
	c.now = 2 * time.Microsecond
	s1 := tr.Start("comm.send", bc)
	c.now = 5 * time.Microsecond
	tr.Instant("comm.retry", s1, obs.Int("attempt", 2))
	c.now = 9 * time.Microsecond
	tr.End(s1)
	s2 := tr.Start("comm.send", bc)
	c.now = 14 * time.Microsecond
	tr.End(s2)
	tr.End(bc)
	c.now = 15 * time.Microsecond
	tr.End(root)

	root2 := tr.Start("master.broadcast", 0, obs.Int("targets", 4))
	bc2 := tr.Start("comm.broadcast", root2, obs.String("structure", "fptree"), obs.Int("targets", 4))
	p1 := tr.Start("fptree.plan", bc2)
	c.now = 17 * time.Microsecond
	tr.End(p1)
	s3 := tr.Start("comm.send", bc2)
	c.now = 21 * time.Microsecond
	tr.End(s3)
	p2 := tr.Start("fptree.plan", bc2) // rebuild after a fault
	c.now = 23 * time.Microsecond
	tr.End(p2)
	tr.Instant("comm.adopt", bc2, obs.Int("node", 9))
	s4 := tr.Start("comm.send", bc2)
	c.now = 30 * time.Microsecond
	tr.End(s4)
	tr.End(bc2)
	tr.End(root2)
	return tr.Spans()
}

func TestReportGolden(t *testing.T) {
	rep := critpath.Analyze([]critpath.Source{
		{Label: "seed 1", Group: "soak", Spans: buildSeedTrace()},
	}, critpath.Options{TopK: 2})
	got := rep.String()

	golden := filepath.Join("testdata", "report.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal([]byte(got), want) {
		t.Fatalf("report drifted from golden (re-run with -update if intended):\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestReportDeterminism(t *testing.T) {
	src := []critpath.Source{{Label: "seed 1", Group: "soak", Spans: buildSeedTrace()}}
	a := critpath.Analyze(src, critpath.Options{})
	b := critpath.Analyze(src, critpath.Options{})
	if a.String() != b.String() {
		t.Fatal("two analyses of the same spans produced different bytes")
	}
	if a.Digest() != b.Digest() {
		t.Fatal("digests differ for identical analyses")
	}
}

func TestParseRoundTrip(t *testing.T) {
	rep := critpath.Analyze([]critpath.Source{
		{Label: "seed 1", Group: "soak", Spans: buildSeedTrace()},
	}, critpath.Options{})
	text := rep.String()
	back, err := critpath.Parse(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if got := back.String(); got != text {
		t.Fatalf("round trip changed bytes:\nfirst:\n%s\nsecond:\n%s", text, got)
	}
}

func TestParseRejectsTamperedDigest(t *testing.T) {
	rep := analyzeOne(t, []obs.Span{span("root", 0, 0, 100)})
	text := strings.Replace(rep.String(), "roots=1", "roots=2", 1)
	if _, err := critpath.Parse(strings.NewReader(text)); err == nil {
		t.Fatal("Parse accepted a tampered report")
	}
	if _, err := critpath.Parse(strings.NewReader("not a report\n")); err == nil {
		t.Fatal("Parse accepted garbage")
	}
}

func TestFromCellsStitching(t *testing.T) {
	// Cell 0 holds the root; cell 1 holds a child linked back via the
	// xparent attribute. FromCells must remap the same-cell parent and
	// resolve the cross-cell one into a single DAG.
	c0 := &fakeClock{}
	t0 := obs.NewTracer(c0.Now)
	root := t0.Start("master.broadcast", 0)
	local := t0.Start("comm.send", root)
	c0.now = 40
	t0.End(local)
	c0.now = 100
	t0.End(root)

	c1 := &fakeClock{}
	t1 := obs.NewTracer(c1.Now)
	c1.now = 50
	remote := t1.Start("comm.send", 0, obs.String("xparent", obs.CellRef(0, root)))
	c1.now = 90
	t1.End(remote)

	spans := critpath.FromCells([]*obs.Tracer{t0, t1})
	if len(spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(spans))
	}
	if spans[2].Parent != 1 {
		t.Fatalf("cross-cell parent = %d, want 1", spans[2].Parent)
	}
	rep := analyzeOne(t, spans)
	if rep.Roots != 1 {
		t.Fatalf("roots = %d, want 1 (stitched DAG)\n%s", rep.Roots, rep.String())
	}
	// The remote send [50,90] owns 40ns; after the frontier retreats to
	// 50, the local send [0,40] owns its own 40ns; the root keeps the
	// two 10ns gaps.
	if got := kindTime(t, rep, "comm.send"); got != 80 {
		t.Errorf("comm.send = %v, want 80", got)
	}
	if got := kindTime(t, rep, "master.broadcast"); got != 20 {
		t.Errorf("master.broadcast = %v, want 20", got)
	}

	// An unresolvable xparent leaves the span a root and counts nothing
	// as orphan (the reference simply doesn't resolve).
	t2 := obs.NewTracer((&fakeClock{}).Now)
	t2.Start("comm.send", 0, obs.String("xparent", "c9.1"))
	spans = critpath.FromCells([]*obs.Tracer{t2})
	if spans[0].Parent != 0 {
		t.Fatalf("bad xparent resolved to %d", spans[0].Parent)
	}

	// Nil tracers are skipped.
	spans = critpath.FromCells([]*obs.Tracer{nil, t0})
	if len(spans) != 2 {
		t.Fatalf("nil cell: spans = %d, want 2", len(spans))
	}
}

func TestFromCellsWorkerOrderInvariance(t *testing.T) {
	// The merged slice depends only on cell order, never on which worker
	// ran a cell: identical recordings in the same cell slots flatten to
	// identical spans.
	build := func() []*obs.Tracer {
		c0 := &fakeClock{}
		t0 := obs.NewTracer(c0.Now)
		r := t0.Start("master.broadcast", 0)
		c0.now = 100
		t0.End(r)
		c1 := &fakeClock{}
		t1 := obs.NewTracer(c1.Now)
		c1.now = 10
		s := t1.Start("comm.send", 0, obs.String("xparent", obs.CellRef(0, r)))
		c1.now = 60
		t1.End(s)
		return []*obs.Tracer{t0, t1}
	}
	a := critpath.Analyze([]critpath.Source{{Label: "x", Group: "g", Spans: critpath.FromCells(build())}}, critpath.Options{})
	b := critpath.Analyze([]critpath.Source{{Label: "x", Group: "g", Spans: critpath.FromCells(build())}}, critpath.Options{})
	if a.Digest() != b.Digest() {
		t.Fatal("identical cell recordings produced different report digests")
	}
}
