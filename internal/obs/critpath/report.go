package critpath

import (
	"bufio"
	"bytes"
	"fmt"
	"hash/fnv"
	"io"
	"strconv"
	"strings"
	"time"
)

// Report is the aggregated critical-path attribution of one analysis.
// WriteText is byte-stable (same spans, same bytes) and self-verifying:
// the final line carries the FNV-64a digest of everything above it,
// which Parse re-checks, so a report file round-trips losslessly into
// Diff.
type Report struct {
	Sources  int // traces analyzed
	TopK     int // path listing bound
	Spans    int // spans + instants seen
	Roots    int // ended root spans analyzed
	Open     int // root spans skipped because still open
	Orphans  int // spans whose parent id did not resolve
	Instants int // instant events seen

	Total       time.Duration // summed root durations
	RetryTime   time.Duration // critical time on spans with a comm.retry child
	RebuildTime time.Duration // critical time on non-first fptree.plan/build
	Retries     int           // comm.retry instants under analyzed roots
	Adopts      int           // comm.adopt instants under analyzed roots

	Groups []Group // sorted by Key
	Paths  []Path  // the TopK slowest roots, slowest first
}

// Group aggregates every root sharing one key (source group + root kind
// + structure/targets when present).
type Group struct {
	Key         string
	Roots       int
	Time        time.Duration // summed root durations
	Max         time.Duration // slowest root
	RetryTime   time.Duration
	RebuildTime time.Duration
	Retries     int
	Adopts      int
	Kinds       []KindAttr // sorted by Name

	kinds map[string]*KindAttr // build-time index; nil after Analyze
}

// Mean returns the group's mean root duration (0 when empty).
func (g *Group) Mean() time.Duration {
	if g.Roots == 0 {
		return 0
	}
	return g.Time / time.Duration(g.Roots)
}

// KindAttr is the critical time one span kind owns within a group: the
// summed self-intervals the backward walk attributed to spans of this
// name, and how many distinct spans contributed.
type KindAttr struct {
	Name string
	Time time.Duration
	Segs int
}

// Path is one root's critical path: the spine of last-finishing
// descendants, each hop annotated with the simulated time attributed to
// the hop itself (its Self values sum to Dur).
type Path struct {
	Dur   time.Duration
	Label string
	Group string
	Chain []Hop

	// Tie-break fields for the slowest-first sort; not serialized.
	start time.Duration
	order int
}

// Hop is one span on a critical path.
type Hop struct {
	Name string
	Self time.Duration
}

// WriteText emits the canonical report. Format (one block per group,
// one line per kind/path, digest trailer):
//
//	critpath report v1
//	sources=N spans=N roots=N open=N orphans=N instants=N
//	total time=D retry=D rebuild=D retries=N adopts=N
//	group "KEY" roots=N time=D mean=D max=D retry=D rebuild=D retries=N adopts=N
//	  kind NAME time=D segs=N share=0.NNNN
//	path K dur=D label="L" group="KEY" chain=a[D]->b[D]
//	digest=%016x
func (r *Report) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	h := fnv.New64a()
	mw := io.MultiWriter(bw, h)

	fmt.Fprintln(mw, "critpath report v1")
	fmt.Fprintf(mw, "sources=%d spans=%d roots=%d open=%d orphans=%d instants=%d\n",
		r.Sources, r.Spans, r.Roots, r.Open, r.Orphans, r.Instants)
	fmt.Fprintf(mw, "total time=%v retry=%v rebuild=%v retries=%d adopts=%d\n",
		r.Total, r.RetryTime, r.RebuildTime, r.Retries, r.Adopts)
	for gi := range r.Groups {
		g := &r.Groups[gi]
		fmt.Fprintf(mw, "group %q roots=%d time=%v mean=%v max=%v retry=%v rebuild=%v retries=%d adopts=%d\n",
			g.Key, g.Roots, g.Time, g.Mean(), g.Max, g.RetryTime, g.RebuildTime, g.Retries, g.Adopts)
		for _, k := range g.Kinds {
			fmt.Fprintf(mw, "  kind %s time=%v segs=%d share=%s\n",
				k.Name, k.Time, k.Segs, share(k.Time, g.Time))
		}
	}
	for i, p := range r.Paths {
		fmt.Fprintf(mw, "path %d dur=%v label=%q group=%q chain=%s\n",
			i+1, p.Dur, p.Label, p.Group, chainString(p.Chain))
	}
	fmt.Fprintf(bw, "digest=%016x\n", h.Sum64())
	return bw.Flush()
}

// String returns the WriteText form.
func (r *Report) String() string {
	var b bytes.Buffer
	// bytes.Buffer writes never fail.
	_ = r.WriteText(&b)
	return b.String()
}

// Digest returns the FNV-64a hash of the report body (the value of the
// digest trailer line).
func (r *Report) Digest() uint64 {
	h := fnv.New64a()
	_ = r.writeBody(h)
	return h.Sum64()
}

// writeBody emits everything above the digest line into w.
func (r *Report) writeBody(w io.Writer) error {
	var b bytes.Buffer
	_ = r.WriteText(&b)
	s := b.String()
	i := strings.LastIndex(s, "digest=")
	_, err := io.WriteString(w, s[:i])
	return err
}

// share renders t/total with four decimals; "0.0000" when total is 0.
func share(t, total time.Duration) string {
	if total == 0 {
		return "0.0000"
	}
	return strconv.FormatFloat(float64(t)/float64(total), 'f', 4, 64)
}

func chainString(chain []Hop) string {
	var b strings.Builder
	for i, h := range chain {
		if i > 0 {
			b.WriteString("->")
		}
		b.WriteString(h.Name)
		b.WriteString("[")
		b.WriteString(h.Self.String())
		b.WriteString("]")
	}
	return b.String()
}

// Parse reads a WriteText report back, verifying its digest trailer.
// The round trip is exact for every field Diff consumes; path tie-break
// scratch fields are not serialized and parse to zero.
func Parse(r io.Reader) (*Report, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	lines := strings.Split(strings.TrimSuffix(string(data), "\n"), "\n")
	if len(lines) < 4 {
		return nil, fmt.Errorf("critpath: truncated report (%d lines)", len(lines))
	}
	if lines[0] != "critpath report v1" {
		return nil, fmt.Errorf("critpath: not a report: %q", lines[0])
	}
	last := lines[len(lines)-1]
	if !strings.HasPrefix(last, "digest=") {
		return nil, fmt.Errorf("critpath: missing digest trailer")
	}
	want, err := strconv.ParseUint(strings.TrimPrefix(last, "digest="), 16, 64)
	if err != nil {
		return nil, fmt.Errorf("critpath: bad digest trailer: %v", err)
	}
	h := fnv.New64a()
	for _, l := range lines[:len(lines)-1] {
		io.WriteString(h, l)
		io.WriteString(h, "\n")
	}
	if got := h.Sum64(); got != want {
		return nil, fmt.Errorf("critpath: digest mismatch: file says %016x, body hashes to %016x", want, got)
	}

	rep := &Report{}
	if err := parseKV(lines[1], "sources", &rep.Sources, "spans", &rep.Spans, "roots", &rep.Roots,
		"open", &rep.Open, "orphans", &rep.Orphans, "instants", &rep.Instants); err != nil {
		return nil, err
	}
	if err := parseTotals(lines[2], rep); err != nil {
		return nil, err
	}
	var g *Group
	flush := func() {
		if g != nil {
			rep.Groups = append(rep.Groups, *g)
			g = nil
		}
	}
	for _, l := range lines[3 : len(lines)-1] {
		switch {
		case strings.HasPrefix(l, "group "):
			flush()
			var err error
			g, err = parseGroup(l)
			if err != nil {
				return nil, err
			}
		case strings.HasPrefix(l, "  kind "):
			if g == nil {
				return nil, fmt.Errorf("critpath: kind line outside group: %q", l)
			}
			k, err := parseKind(l)
			if err != nil {
				return nil, err
			}
			g.Kinds = append(g.Kinds, k)
		case strings.HasPrefix(l, "path "):
			flush()
			p, err := parsePath(l)
			if err != nil {
				return nil, err
			}
			rep.Paths = append(rep.Paths, p)
		default:
			return nil, fmt.Errorf("critpath: unrecognized line: %q", l)
		}
	}
	flush()
	return rep, nil
}

// parseKV pulls int fields from a "k=v k=v" line; pairs are (key, *int).
func parseKV(line string, pairs ...any) error {
	fields := strings.Fields(line)
	vals := make(map[string]string, len(fields))
	for _, f := range fields {
		if k, v, ok := strings.Cut(f, "="); ok {
			vals[k] = v
		}
	}
	for i := 0; i < len(pairs); i += 2 {
		key := pairs[i].(string)
		v, ok := vals[key]
		if !ok {
			return fmt.Errorf("critpath: %q missing in %q", key, line)
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			return fmt.Errorf("critpath: bad %s in %q: %v", key, line, err)
		}
		*pairs[i+1].(*int) = n
	}
	return nil
}

func parseTotals(line string, rep *Report) error {
	fields := strings.Fields(line)
	for _, f := range fields {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			continue
		}
		var err error
		switch k {
		case "time":
			rep.Total, err = time.ParseDuration(v)
		case "retry":
			rep.RetryTime, err = time.ParseDuration(v)
		case "rebuild":
			rep.RebuildTime, err = time.ParseDuration(v)
		case "retries":
			rep.Retries, err = strconv.Atoi(v)
		case "adopts":
			rep.Adopts, err = strconv.Atoi(v)
		}
		if err != nil {
			return fmt.Errorf("critpath: bad %s in %q: %v", k, line, err)
		}
	}
	return nil
}

func parseGroup(line string) (*Group, error) {
	rest := strings.TrimPrefix(line, "group ")
	key, rest, err := unquotePrefix(rest)
	if err != nil {
		return nil, fmt.Errorf("critpath: bad group line %q: %v", line, err)
	}
	g := &Group{Key: key}
	for _, f := range strings.Fields(rest) {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			continue
		}
		switch k {
		case "roots":
			g.Roots, err = strconv.Atoi(v)
		case "time":
			g.Time, err = time.ParseDuration(v)
		case "max":
			g.Max, err = time.ParseDuration(v)
		case "retry":
			g.RetryTime, err = time.ParseDuration(v)
		case "rebuild":
			g.RebuildTime, err = time.ParseDuration(v)
		case "retries":
			g.Retries, err = strconv.Atoi(v)
		case "adopts":
			g.Adopts, err = strconv.Atoi(v)
		case "mean":
			// Derived from Time/Roots; re-derived on write.
		}
		if err != nil {
			return nil, fmt.Errorf("critpath: bad %s in %q: %v", k, line, err)
		}
	}
	return g, nil
}

func parseKind(line string) (KindAttr, error) {
	fields := strings.Fields(strings.TrimPrefix(line, "  kind "))
	if len(fields) < 3 {
		return KindAttr{}, fmt.Errorf("critpath: bad kind line %q", line)
	}
	k := KindAttr{Name: fields[0]}
	var err error
	for _, f := range fields[1:] {
		key, v, ok := strings.Cut(f, "=")
		if !ok {
			continue
		}
		switch key {
		case "time":
			k.Time, err = time.ParseDuration(v)
		case "segs":
			k.Segs, err = strconv.Atoi(v)
		case "share":
			// Derived from time/group time; re-derived on write.
		}
		if err != nil {
			return KindAttr{}, fmt.Errorf("critpath: bad %s in %q: %v", key, line, err)
		}
	}
	return k, nil
}

func parsePath(line string) (Path, error) {
	var p Path
	rest := strings.TrimPrefix(line, "path ")
	// Skip the ordinal.
	if i := strings.IndexByte(rest, ' '); i >= 0 {
		rest = rest[i+1:]
	}
	var err error
	for rest != "" {
		var f string
		if strings.HasPrefix(rest, "label=") || strings.HasPrefix(rest, "group=") {
			k, r, _ := strings.Cut(rest, "=")
			val, r2, uerr := unquotePrefix(r)
			if uerr != nil {
				return Path{}, fmt.Errorf("critpath: bad path line %q: %v", line, uerr)
			}
			if k == "label" {
				p.Label = val
			} else {
				p.Group = val
			}
			rest = strings.TrimLeft(r2, " ")
			continue
		}
		f, rest, _ = strings.Cut(rest, " ")
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			continue
		}
		switch k {
		case "dur":
			p.Dur, err = time.ParseDuration(v)
			if err != nil {
				return Path{}, fmt.Errorf("critpath: bad dur in %q: %v", line, err)
			}
		case "chain":
			p.Chain, err = parseChain(v)
			if err != nil {
				return Path{}, fmt.Errorf("critpath: bad chain in %q: %v", line, err)
			}
		}
	}
	return p, nil
}

func parseChain(s string) ([]Hop, error) {
	var chain []Hop
	for _, hop := range strings.Split(s, "->") {
		i := strings.IndexByte(hop, '[')
		if i < 0 || !strings.HasSuffix(hop, "]") {
			return nil, fmt.Errorf("bad hop %q", hop)
		}
		d, err := time.ParseDuration(hop[i+1 : len(hop)-1])
		if err != nil {
			return nil, err
		}
		chain = append(chain, Hop{Name: hop[:i], Self: d})
	}
	return chain, nil
}

// unquotePrefix strips one leading Go-quoted string from s, returning
// the unquoted value and the remainder.
func unquotePrefix(s string) (string, string, error) {
	if !strings.HasPrefix(s, `"`) {
		return "", "", fmt.Errorf("expected quoted string at %q", s)
	}
	// Find the closing quote, honoring backslash escapes.
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			val, err := strconv.Unquote(s[:i+1])
			if err != nil {
				return "", "", err
			}
			return val, s[i+1:], nil
		}
	}
	return "", "", fmt.Errorf("unterminated quoted string at %q", s)
}
