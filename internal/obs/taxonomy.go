package obs

// Span and metric taxonomy: the one registry of every span, instant and
// metric name the simulation emits. OBSERVABILITY.md's tables are
// generated from these slices (`benchrunner -spans` prints them) and
// byte-gated by docs_test.go; a source-scan test in this package checks
// the registry against the actual Start/Instant/Counter/Gauge/Histogram
// call sites in internal/, so neither the handbook nor this file can
// drift from the code. Pure data — nothing here touches the simulation,
// so determinism is untouched.

import (
	"fmt"
	"sort"
	"strings"
)

// SpanInfo documents one span or instant name.
type SpanInfo struct {
	Name   string // name as recorded by the tracer
	Kind   string // "span" (has duration) or "instant" (point event)
	Pkg    string // package that emits it
	Parent string // what it nests under ("root" = top-level)
	When   string // when it is emitted
}

// SpanTaxonomy returns the span/instant registry, sorted by name.
func SpanTaxonomy() []SpanInfo {
	s := []SpanInfo{
		{"comm.adopt", "instant", "comm", "comm.broadcast", "a relay failed after receiving its sub-tree; the broadcaster re-parents the relay's children and sends past it"},
		{"comm.broadcast", "span", "comm", "root or hand-off (master.task)", "one per broadcast tracker, from first send to resolution; attrs structure/targets, delivered/unreachable on end"},
		{"comm.retry", "instant", "comm", "comm.send", "each retransmission of an unacknowledged message (attempt >= 2)"},
		{"comm.send", "span", "comm", "comm.broadcast or hand-off", "one per point-to-point delivery chain, until ack or the unreachable verdict; attrs from/to, attempts/ok on settle"},
		{"fptree.build", "span", "comm", "comm.broadcast or hand-off", "construction of the fan-out tree over live targets; a repeat build under the same root is a rebuild (critpath's rebuild share)"},
		{"fptree.plan", "span", "comm", "comm.broadcast or hand-off", "planning the fan-out tree shape (width/depth) before building"},
		{"master.broadcast", "span", "core", "root", "a master-driven broadcast: task split, satellite dispatch, resolution; attr targets, delivered on end"},
		{"master.realloc", "instant", "core", "master.task", "a failed satellite's sub-nodelist moved to the next running satellite"},
		{"master.takeover", "instant", "core", "master.broadcast or master.task", "the master does the work itself: satellite pool empty/drained, or the realloc limit was hit"},
		{"master.task", "span", "core", "master.broadcast", "one satellite subtask from dispatch to resolution; attrs sat/nodes/trail"},
		{"predict.alert", "instant", "predict", "root", "monitoring raised an anomaly alert; the node enters the predicted-fault set"},
		{"predict.walltime", "span", "sched", "root", "walltime inference for a job at schedule time; attr walltime_ns"},
		{"reconcile.breaker_open", "instant", "reconcile", "reconcile.round", "a satellite's repeated probe failures tripped the circuit breaker"},
		{"reconcile.drain", "span", "reconcile", "root", "graceful drain of a cordoned satellite; stays open across rounds until the drain resolves"},
		{"reconcile.promote", "instant", "reconcile", "reconcile.round", "a standby satellite promoted toward the spec target"},
		{"reconcile.round", "span", "reconcile", "root", "one control-loop round: observe the pool, diff against spec, act"},
		{"reconcile.spec_update", "instant", "reconcile", "root", "a new declarative spec was applied; convergence state resets"},
		{"reconcile.takeover", "instant", "reconcile", "reconcile.round", "a drained cordoned satellite was replaced by a promotion in the same round"},
		{"satellite.transition", "instant", "satellite", "root", "the satellite state machine moved; attrs sat/from/to"},
		{"sched.crash", "instant", "sched", "root", "the scheduler node crashed: running jobs are killed and downtime begins"},
		{"sched.job", "span", "sched", "root", "a job's residence from start to completion; attrs job/nodes/wait_ns"},
	}
	sort.Slice(s, func(i, j int) bool { return s[i].Name < s[j].Name })
	return s
}

// MetricInfo documents one metrics-registry entry.
type MetricInfo struct {
	Name string // registry name
	Kind string // "counter", "gauge" or "histogram"
	Pkg  string // package that registers it
	What string // what it measures
}

// MetricTaxonomy returns the metric registry, sorted by name.
func MetricTaxonomy() []MetricInfo {
	m := []MetricInfo{
		{"comm.broadcast_elapsed_ns", "histogram", "comm", "broadcast resolution latency (virtual ns)"},
		{"comm.delivered", "counter", "comm", "deliveries acknowledged"},
		{"comm.messages", "counter", "comm", "messages transmitted, retries included"},
		{"comm.outstanding_sends", "gauge", "comm", "delivery chains currently in flight"},
		{"comm.retries", "counter", "comm", "retransmissions after loss or timeout"},
		{"comm.unreachable", "counter", "comm", "targets given up as unreachable"},
		{"estimate.generations", "counter", "estimate", "estimation-model regenerations"},
		{"estimate.model_used", "counter", "estimate", "predictions served by a fitted model (vs. the user estimate)"},
		{"estimate.predictions", "counter", "estimate", "walltime predictions requested"},
		{"master.broadcasts", "counter", "core", "broadcasts initiated by the master"},
		{"master.heartbeat_sweeps", "counter", "core", "heartbeat sweeps over the satellite pool"},
		{"master.pool_drained_fallbacks", "counter", "core", "takeovers forced by a fully drained pool"},
		{"master.reallocations", "counter", "core", "subtasks moved to another satellite after a failure"},
		{"master.subtasks", "counter", "core", "satellite subtasks dispatched"},
		{"master.takeovers", "counter", "core", "broadcasts the master completed itself"},
		{"predict.alerts", "counter", "predict", "anomaly alerts received from monitoring"},
		{"reconcile.actions", "counter", "reconcile", "pool mutations performed by the control loop"},
		{"reconcile.breaker_opens", "counter", "reconcile", "circuit breakers tripped on probing satellites"},
		{"reconcile.converged", "gauge", "reconcile", "1 while observed state matches spec, else 0"},
		{"reconcile.drains", "counter", "reconcile", "graceful drains started"},
		{"reconcile.drains_forced", "counter", "reconcile", "drains force-finished at the deadline"},
		{"reconcile.promotes", "counter", "reconcile", "standby satellites promoted"},
		{"reconcile.rounds", "counter", "reconcile", "control-loop rounds executed"},
		{"reconcile.spec_updates", "counter", "reconcile", "declarative spec replacements applied"},
		{"reconcile.takeovers", "counter", "reconcile", "cordon-replacement takeovers in a round"},
		{"satellite.downs", "counter", "satellite", "transitions into Down"},
		{"satellite.faults", "counter", "satellite", "transitions into Fault"},
		{"satellite.transitions", "counter", "satellite", "state-machine transitions, all kinds"},
		{"sched.completed", "counter", "sched", "jobs that ran to completion"},
		{"sched.crashes", "counter", "sched", "scheduler-node crashes"},
		{"sched.killed", "counter", "sched", "jobs killed at their walltime limit"},
		{"sched.started", "counter", "sched", "jobs started"},
		{"sched.submitted", "counter", "sched", "jobs submitted"},
	}
	sort.Slice(m, func(i, j int) bool { return m[i].Name < m[j].Name })
	return m
}

// SpanTaxonomyMarkdown renders the span table exactly as OBSERVABILITY.md
// embeds it (and as `benchrunner -spans` prints it).
func SpanTaxonomyMarkdown() string {
	var b strings.Builder
	b.WriteString("| name | kind | package | parent | emitted when |\n")
	b.WriteString("|------|------|---------|--------|--------------|\n")
	for _, s := range SpanTaxonomy() {
		fmt.Fprintf(&b, "| `%s` | %s | `%s` | %s | %s |\n", s.Name, s.Kind, s.Pkg, s.Parent, s.When)
	}
	return b.String()
}

// MetricTaxonomyMarkdown renders the metric table exactly as
// OBSERVABILITY.md embeds it.
func MetricTaxonomyMarkdown() string {
	var b strings.Builder
	b.WriteString("| name | kind | package | measures |\n")
	b.WriteString("|------|------|---------|----------|\n")
	for _, m := range MetricTaxonomy() {
		fmt.Fprintf(&b, "| `%s` | %s | `%s` | %s |\n", m.Name, m.Kind, m.Pkg, m.What)
	}
	return b.String()
}
