package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
)

// Counter is a monotonically increasing count. Instruments are plain
// int64s — the simulation is single-threaded, so no atomics — and every
// method is safe on a nil receiver, so code holding an instrument from a
// nil registry still runs.
type Counter struct{ v int64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative n is a caller bug but is not checked: counters
// are trusted internal instruments, not an API boundary).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v += n
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is an instantaneous level (outstanding sends, queue depth).
type Gauge struct{ v int64 }

// Set replaces the level.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v = v
}

// Add moves the level by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v += delta
}

// Value returns the current level.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Histogram counts observations into fixed buckets: bounds[i] is the
// inclusive upper edge of bucket i, with one implicit overflow bucket
// above the last bound. Bounds are fixed at registration so every run of
// the same build snapshots identical shapes.
type Histogram struct {
	bounds []int64
	counts []int64 // len(bounds)+1; the last is the overflow bucket
	count  int64
	sum    int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count++
	h.sum += v
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
			return
		}
	}
	h.counts[len(h.bounds)]++
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Bounds returns the bucket upper edges (shared storage: read only).
func (h *Histogram) Bounds() []int64 {
	if h == nil {
		return nil
	}
	return h.bounds
}

// Counts returns the per-bucket counts, overflow last (shared storage:
// read only).
func (h *Histogram) Counts() []int64 {
	if h == nil {
		return nil
	}
	return h.counts
}

// Registry is a name-indexed set of instruments. Get-or-create lookups
// (Counter, Gauge, Histogram) are meant for wiring time — hot paths
// should cache the returned instrument. All methods are nil-safe: a nil
// registry hands out nil instruments whose methods no-op.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// ascending bucket upper edges on first use. A later call with the same
// name returns the existing histogram; its original bounds win.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	h, ok := r.hists[name]
	if !ok {
		bs := append([]int64(nil), bounds...)
		sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
		h = &Histogram{bounds: bs, counts: make([]int64, len(bs)+1)}
		r.hists[name] = h
	}
	return h
}

// Metric is one instrument in a snapshot.
type Metric struct {
	// Kind is "counter", "gauge" or "histogram".
	Kind string
	Name string
	// Value is the counter count or gauge level (histograms: 0).
	Value int64
	// Hist is set for histograms only.
	Hist *Histogram
}

// Snapshot returns every instrument sorted by name (ties broken by
// kind), a stable order independent of registration or map iteration
// order — the property the byte-stable text dump and every report
// builds on.
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	out := make([]Metric, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for name := range r.counters {
		out = append(out, Metric{Kind: "counter", Name: name})
	}
	for name := range r.gauges {
		out = append(out, Metric{Kind: "gauge", Name: name})
	}
	for name := range r.hists {
		out = append(out, Metric{Kind: "histogram", Name: name})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Kind < out[j].Kind
	})
	for i := range out {
		switch out[i].Kind {
		case "counter":
			out[i].Value = r.counters[out[i].Name].Value()
		case "gauge":
			out[i].Value = r.gauges[out[i].Name].Value()
		case "histogram":
			out[i].Hist = r.hists[out[i].Name]
		}
	}
	return out
}

// WriteText writes the byte-stable dump of the registry: one line per
// counter/gauge, a header plus cumulative le= lines per histogram, in
// snapshot order.
func (r *Registry) WriteText(w io.Writer) error {
	for _, m := range r.Snapshot() {
		switch m.Kind {
		case "histogram":
			h := m.Hist
			if _, err := fmt.Fprintf(w, "histogram %s count=%d sum=%d\n", m.Name, h.Count(), h.Sum()); err != nil {
				return err
			}
			cum := int64(0)
			for i, c := range h.Counts() {
				cum += c
				edge := "+Inf"
				if i < len(h.Bounds()) {
					edge = strconv.FormatInt(h.Bounds()[i], 10)
				}
				if _, err := fmt.Fprintf(w, "  le=%s %d\n", edge, cum); err != nil {
					return err
				}
			}
		default:
			if _, err := fmt.Fprintf(w, "%s %s %d\n", m.Kind, m.Name, m.Value); err != nil {
				return err
			}
		}
	}
	return nil
}
