package sched

import (
	"testing"
	"time"

	"eslurm/internal/estimate"
	"eslurm/internal/trace"
)

// mkJob builds a trace job for hand-written scenarios.
func mkJob(id, nodes int, submit, runtime, est time.Duration) trace.Job {
	return trace.Job{
		ID: id, Name: "j", User: "u", Nodes: nodes, Cores: nodes * 24,
		Submit: submit, Runtime: runtime, UserEstimate: est,
	}
}

func TestSingleJob(t *testing.T) {
	jobs := []trace.Job{mkJob(0, 4, 0, time.Hour, 2*time.Hour)}
	res := Run(jobs, Config{Nodes: 8})
	if res.Completed != 1 || res.Killed != 0 {
		t.Fatalf("completed=%d killed=%d", res.Completed, res.Killed)
	}
	if res.AvgWait != 0 {
		t.Errorf("wait = %v, want 0 (empty cluster)", res.AvgWait)
	}
	if res.Makespan != time.Hour {
		t.Errorf("makespan = %v", res.Makespan)
	}
	// 4 of 8 nodes busy for the whole makespan.
	if res.Utilization < 0.49 || res.Utilization > 0.51 {
		t.Errorf("utilization = %v, want 0.5", res.Utilization)
	}
}

func TestFCFSOrdering(t *testing.T) {
	// Two 8-node jobs on an 8-node cluster: strictly serial.
	jobs := []trace.Job{
		mkJob(0, 8, 0, time.Hour, time.Hour),
		mkJob(1, 8, 0, time.Hour, time.Hour),
	}
	res := Run(jobs, Config{Nodes: 8, Policy: FCFS})
	if res.Completed != 2 {
		t.Fatalf("completed = %d", res.Completed)
	}
	if res.Makespan != 2*time.Hour {
		t.Errorf("makespan = %v, want 2h", res.Makespan)
	}
	// Second job waited one hour.
	if res.AvgWait != 30*time.Minute {
		t.Errorf("avg wait = %v, want 30m", res.AvgWait)
	}
}

func TestBackfillFillsHole(t *testing.T) {
	// J0 takes 6/8 nodes for 2h. J1 (head) needs 8 and must wait. J2 needs
	// 2 nodes for 1h: under EASY it backfills immediately because it ends
	// before J1's reservation.
	jobs := []trace.Job{
		mkJob(0, 6, 0, 2*time.Hour, 2*time.Hour),
		mkJob(1, 8, time.Minute, time.Hour, time.Hour),
		mkJob(2, 2, 2*time.Minute, time.Hour, time.Hour),
	}
	bf := Run(jobs, Config{Nodes: 8, Policy: Backfill})
	fc := Run(jobs, Config{Nodes: 8, Policy: FCFS})
	if bf.Completed != 3 || fc.Completed != 3 {
		t.Fatal("jobs lost")
	}
	if bf.AvgWait >= fc.AvgWait {
		t.Errorf("backfill wait %v not below FCFS %v", bf.AvgWait, fc.AvgWait)
	}
	if bf.Utilization <= fc.Utilization {
		t.Errorf("backfill utilization %v not above FCFS %v", bf.Utilization, fc.Utilization)
	}
}

func TestBackfillDoesNotStarveHead(t *testing.T) {
	// The backfilled job must not delay the head's reservation: a 2-node
	// job whose walltime exceeds the shadow time and needs reserved nodes
	// must NOT start.
	jobs := []trace.Job{
		mkJob(0, 7, 0, time.Hour, time.Hour),                 // leaves 1 free
		mkJob(1, 8, time.Minute, time.Hour, time.Hour),       // head, reserves t=1h
		mkJob(2, 1, 2*time.Minute, 3*time.Hour, 3*time.Hour), // would push head to t=3h
	}
	res := Run(jobs, Config{Nodes: 8, Policy: Backfill})
	// Head must start at ~1h => completes at ~2h; long job backfills only
	// after... total makespan: j0 ends 1h, head runs 1-2h, j2 runs 2-5h.
	if res.Makespan < 4*time.Hour {
		t.Errorf("makespan = %v: the 3h job delayed the head", res.Makespan)
	}
}

func TestOversizedJobDropped(t *testing.T) {
	jobs := []trace.Job{
		mkJob(0, 100, 0, time.Hour, time.Hour),
		mkJob(1, 4, 0, time.Hour, time.Hour),
	}
	res := Run(jobs, Config{Nodes: 8})
	if res.Completed != 1 {
		t.Fatalf("completed = %d, want 1 (oversized rejected)", res.Completed)
	}
}

func TestKillAtLimitAndResubmit(t *testing.T) {
	// Underestimated job: 1h estimate, 2h actual. With KillAtLimit it is
	// killed at 1h and resubmitted with a doubled (2h) limit, which still
	// kills it at exactly its runtime boundary... 2h >= 2h runtime, so the
	// rerun completes.
	jobs := []trace.Job{mkJob(0, 4, 0, 2*time.Hour, time.Hour)}
	res := Run(jobs, Config{Nodes: 8, KillAtLimit: true})
	if res.Killed != 1 {
		t.Fatalf("killed = %d, want 1", res.Killed)
	}
	if res.Completed != 1 {
		t.Fatalf("completed = %d, want 1 (the resubmission)", res.Completed)
	}
	// The kill wasted an hour: makespan = 1h (killed run) + 2h (rerun).
	if res.Makespan != 3*time.Hour {
		t.Errorf("makespan = %v, want 3h", res.Makespan)
	}
}

func TestNoKillWithoutFlag(t *testing.T) {
	jobs := []trace.Job{mkJob(0, 4, 0, 2*time.Hour, time.Hour)}
	res := Run(jobs, Config{Nodes: 8})
	if res.Killed != 0 || res.Completed != 1 {
		t.Errorf("killed=%d completed=%d", res.Killed, res.Completed)
	}
}

func TestOverheadExtendsOccupation(t *testing.T) {
	jobs := []trace.Job{mkJob(0, 4, 0, time.Hour, time.Hour)}
	ov := func(int) (time.Duration, time.Duration) { return 5 * time.Minute, 5 * time.Minute }
	res := Run(jobs, Config{Nodes: 8, Overhead: ov})
	if res.Makespan != 70*time.Minute {
		t.Errorf("makespan = %v, want 70m (load+run+term)", res.Makespan)
	}
}

func TestCrashDelaysScheduling(t *testing.T) {
	// With the RM down nearly always, queue waits explode.
	var jobs []trace.Job
	for i := 0; i < 20; i++ {
		jobs = append(jobs, mkJob(i, 4, time.Duration(i)*time.Minute, 30*time.Minute, time.Hour))
	}
	clean := Run(jobs, Config{Nodes: 8})
	crashy := Run(jobs, Config{Nodes: 8, CrashMTBF: 30 * time.Minute, CrashDowntime: 2 * time.Hour, Seed: 3})
	if crashy.AvgWait <= clean.AvgWait {
		t.Errorf("crashes did not increase wait: %v vs %v", crashy.AvgWait, clean.AvgWait)
	}
	if crashy.Completed != clean.Completed {
		t.Errorf("crashes lost jobs: %d vs %d", crashy.Completed, clean.Completed)
	}
}

func TestSlowdownBounded(t *testing.T) {
	// A 1-second job with zero wait: slowdown clamps at 1 via tau.
	jobs := []trace.Job{mkJob(0, 1, 0, time.Second, time.Minute)}
	res := Run(jobs, Config{Nodes: 8})
	if res.AvgBoundedSlowdown != 1 {
		t.Errorf("bounded slowdown = %v, want 1", res.AvgBoundedSlowdown)
	}
}

func TestTraceReplayRealistic(t *testing.T) {
	tr := trace.Generate(trace.Tianhe2AConfig(3000))
	res := Run(tr.Jobs, Config{Nodes: 1024, KillAtLimit: true})
	if res.Completed < 2500 {
		t.Fatalf("completed = %d of ~3000", res.Completed)
	}
	if res.Utilization <= 0 || res.Utilization > 1 {
		t.Fatalf("utilization = %v", res.Utilization)
	}
	if res.AvgBoundedSlowdown < 1 {
		t.Errorf("slowdown = %v < 1", res.AvgBoundedSlowdown)
	}
}

func TestAccurateWalltimesImproveScheduling(t *testing.T) {
	// The Fig. 10 mechanism: planning with accurate runtimes (here: an
	// oracle predictor with a small margin) must not be worse than
	// planning with inflated user estimates, and typically reduces waits.
	tr := trace.Generate(trace.Tianhe2AConfig(4000))
	user := Run(tr.Jobs, Config{Nodes: 512, KillAtLimit: true})
	oracle := Run(tr.Jobs, Config{Nodes: 512, KillAtLimit: true, Predictor: oraclePred{}})
	if oracle.AvgWait > user.AvgWait {
		t.Errorf("oracle walltimes increased wait: %v vs %v", oracle.AvgWait, user.AvgWait)
	}
	if oracle.Utilization < user.Utilization-0.02 {
		t.Errorf("oracle utilization %v below user %v", oracle.Utilization, user.Utilization)
	}
}

// oraclePred plans with the actual runtime plus 5%.
type oraclePred struct{}

func (oraclePred) Walltime(j *trace.Job) time.Duration {
	return time.Duration(float64(j.Runtime) * 1.05)
}
func (oraclePred) JobDone(*trace.Job) {}

func TestFrameworkWalltimesIntegration(t *testing.T) {
	tr := trace.Generate(trace.NGTianheConfig(3000))
	f := estimate.NewFramework(estimate.FrameworkConfig{})
	res := Run(tr.Jobs, Config{Nodes: 2048, KillAtLimit: true, Predictor: FrameworkWalltimes{F: f}})
	if res.Completed < 2500 {
		t.Fatalf("completed = %d", res.Completed)
	}
	if f.Generations == 0 {
		t.Error("framework never trained during replay")
	}
}

func TestRunPanicsOnZeroNodes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on Nodes=0")
		}
	}()
	Run(nil, Config{})
}

func TestWaitDistributionMetrics(t *testing.T) {
	// Three serial 8-node jobs: waits are 0, 1h, 2h.
	jobs := []trace.Job{
		mkJob(0, 8, 0, time.Hour, time.Hour),
		mkJob(1, 8, 0, time.Hour, time.Hour),
		mkJob(2, 8, 0, time.Hour, time.Hour),
	}
	res := Run(jobs, Config{Nodes: 8, Policy: FCFS})
	if res.AvgWait != time.Hour {
		t.Errorf("avg wait = %v, want 1h", res.AvgWait)
	}
	if res.P95Wait != 2*time.Hour {
		t.Errorf("p95 wait = %v, want 2h (the tail job)", res.P95Wait)
	}
	if res.MaxBoundedSlowdown < res.AvgBoundedSlowdown {
		t.Error("max slowdown below average")
	}
}
