// Package sched is the job-scheduling simulator behind the Fig. 10
// evaluation: an event-driven cluster scheduler replaying workload traces
// under FCFS or EASY backfill, with pluggable walltime estimation (user
// estimates vs the ESlurm estimation framework), per-RM job
// load/termination overheads, walltime kills with resubmission, and a
// master-crash model for centralized RMs at scale (§II-B: the production
// Slurm crashed every ~42 h with ~90 min reboots).
//
// Metrics follow Section VII-D: system utilization (node-hours running /
// total elapsed node-hours), average waiting time, and average bounded
// slowdown (Eq. 6 with τ = 10 s).
//
// Determinism: each Run owns a private simnet engine seeded from
// Config.Seed; crash timing draws from a labeled RNG stream and every
// scheduling pass fires as an engine event, so a replay of the same trace
// and config reproduces the metrics exactly.
package sched

import (
	"time"

	"eslurm/internal/estimate"
	"eslurm/internal/obs"
	"eslurm/internal/simnet"
	"eslurm/internal/stats"
	"eslurm/internal/trace"
)

// Policy selects the queueing discipline.
type Policy int

const (
	// FCFS starts jobs strictly in queue order.
	FCFS Policy = iota
	// Backfill is EASY backfilling: the queue head gets a reservation and
	// later jobs may jump ahead if they cannot delay it (the algorithm all
	// RMs use in the Fig. 10 comparison).
	Backfill
)

// WalltimePredictor supplies the walltime limit the scheduler plans with.
// estimate.Framework and every estimate.Estimator satisfy the shape via
// the adapters below.
type WalltimePredictor interface {
	// Walltime returns the limit for a newly submitted job.
	Walltime(j *trace.Job) time.Duration
	// JobDone reports a finished job and its actual runtime.
	JobDone(j *trace.Job)
}

// UserWalltimes plans with the user-supplied estimates (every baseline RM).
type UserWalltimes struct{}

// Walltime returns the user's request.
func (UserWalltimes) Walltime(j *trace.Job) time.Duration { return j.UserEstimate }

// JobDone is a no-op.
func (UserWalltimes) JobDone(*trace.Job) {}

// Overhead gives the RM-imposed job load and termination latencies for a
// job of a given node count — measured from the rm package's broadcast
// models and fed in as a lookup so trace replay stays fast.
type Overhead func(nodes int) (load, term time.Duration)

// Config parameterizes one scheduling run.
type Config struct {
	// Nodes is the cluster's compute-node count.
	Nodes int
	// Policy defaults to Backfill.
	Policy Policy
	// Predictor defaults to UserWalltimes.
	Predictor WalltimePredictor
	// Overhead defaults to zero overhead.
	Overhead Overhead
	// KillAtLimit enforces walltime limits: a job whose limit is below its
	// actual runtime is killed at the limit and resubmitted once with a
	// doubled request (the failure-and-reschedule cost of underestimation,
	// §V-B).
	KillAtLimit bool
	// CrashMTBF, when positive, takes the whole RM down on this mean
	// period; no job starts during CrashDowntime (default 90 min). Models
	// the centralized-master crashes observed in production (§II-B).
	CrashMTBF     time.Duration
	CrashDowntime time.Duration
	// UtilWindow, when positive, measures utilization over this fixed
	// horizon from trace start (the production observation window) rather
	// than over the replay's makespan: work an RM fails to start inside
	// the window does not count, which is how a slow or crashing master
	// depresses production utilization.
	UtilWindow time.Duration
	// Seed drives crash timing.
	Seed int64
	// OnEngine, when set, observes the run's engine right after
	// construction — before any event is scheduled — so callers can enable
	// tracing or read the metrics registry (counters sched.submitted,
	// sched.started, sched.completed, sched.killed, sched.crashes).
	OnEngine func(*simnet.Engine)
}

// Result carries the Fig. 10 metrics for one run.
type Result struct {
	// Utilization is used node-hours over total elapsed node-hours.
	Utilization float64
	// AvgWait is the mean queue wait.
	AvgWait time.Duration
	// P95Wait is the 95th-percentile queue wait — means hide the tail
	// that users actually complain about.
	P95Wait time.Duration
	// AvgBoundedSlowdown is Eq. 6 averaged over completed jobs (τ = 10 s).
	AvgBoundedSlowdown float64
	// MaxBoundedSlowdown is the worst single job's bounded slowdown.
	MaxBoundedSlowdown float64
	// Completed, Killed count job outcomes; Killed jobs were resubmitted.
	Completed, Killed int
	// Makespan is the span from first submission to last completion.
	Makespan time.Duration
}

const slowdownTau = 10 * time.Second

// runningJob tracks an executing job for the backfill planner.
type runningJob struct {
	nodes    int
	limitEnd time.Duration // when its walltime limit expires
}

type queuedJob struct {
	job trace.Job
	// walltime is the limit the scheduler plans with (predictor output).
	walltime time.Duration
	// killLimit is the limit the job is actually killed at: the user's
	// request when present. System predictions steer backfill but never
	// kill a job early (Tsafrir et al.; the ESlurm framework's AEA gate
	// plays the same safety role).
	killLimit time.Duration
	enqueued  time.Duration
	resubmit  bool
}

// Run replays jobs (which must be sorted by Submit) through the scheduler.
func Run(jobs []trace.Job, cfg Config) Result {
	if cfg.Nodes <= 0 {
		panic("sched: Config.Nodes must be positive")
	}
	if cfg.Predictor == nil {
		cfg.Predictor = UserWalltimes{}
	}
	if cfg.Overhead == nil {
		cfg.Overhead = func(int) (time.Duration, time.Duration) { return 0, 0 }
	}
	if cfg.CrashDowntime == 0 {
		cfg.CrashDowntime = 90 * time.Minute
	}

	e := simnet.NewEngine(cfg.Seed + 7)
	if cfg.OnEngine != nil {
		cfg.OnEngine(e)
	}
	s := &state{
		cfg:    cfg,
		engine: e,
		free:   cfg.Nodes,
		in:     newSchedInstruments(e.Metrics()),
	}

	var firstSubmit, lastEnd time.Duration
	if len(jobs) > 0 {
		firstSubmit = jobs[0].Submit
	}
	for i := range jobs {
		j := jobs[i]
		if j.Nodes > cfg.Nodes {
			continue // cannot ever fit; real RMs reject at submit
		}
		s.outstanding++
		e.Schedule(j.Submit, func() { s.submit(j, false) })
	}

	// Crash process: the chain re-arms itself only while work remains, so
	// the event heap drains once the trace is finished.
	if cfg.CrashMTBF > 0 && s.outstanding > 0 {
		rng := e.Rand("sched/crash")
		var crash func()
		crash = func() {
			if s.outstanding == 0 {
				return
			}
			gap := time.Duration(rng.ExpFloat64() * float64(cfg.CrashMTBF))
			e.After(gap, func() {
				if s.outstanding == 0 {
					return
				}
				s.down = true
				s.in.crashes.Inc()
				e.Tracer().Instant("sched.crash", 0,
					obs.Int64("downtime_ns", int64(cfg.CrashDowntime)))
				e.After(cfg.CrashDowntime, func() {
					s.down = false
					s.schedule()
					crash()
				})
			})
		}
		crash()
	}
	e.Run()

	lastEnd = s.lastCompletion
	res := Result{Completed: s.completed, Killed: s.killed, Makespan: lastEnd - firstSubmit}
	if s.completed > 0 {
		res.AvgWait = time.Duration(int64(s.waitSum) / int64(s.completed))
		res.AvgBoundedSlowdown = s.slowdownSum / float64(s.completed)
		res.P95Wait = time.Duration(s.waits.Percentile(95) * float64(time.Second))
		res.MaxBoundedSlowdown = s.slowdowns.Max()
	}
	if cfg.UtilWindow > 0 {
		res.Utilization = s.nodeSeconds / (float64(cfg.Nodes) * cfg.UtilWindow.Seconds())
	} else if res.Makespan > 0 {
		res.Utilization = s.nodeSeconds / (float64(cfg.Nodes) * res.Makespan.Seconds())
	}
	return res
}

// schedInstruments are the scheduler's registry-backed counters; always on
// (the registry is plain int64 bumps), unlike spans which need tracing
// enabled.
type schedInstruments struct {
	submitted, started, completed, killed, crashes *obs.Counter
}

func newSchedInstruments(m *obs.Registry) schedInstruments {
	return schedInstruments{
		submitted: m.Counter("sched.submitted"),
		started:   m.Counter("sched.started"),
		completed: m.Counter("sched.completed"),
		killed:    m.Counter("sched.killed"),
		crashes:   m.Counter("sched.crashes"),
	}
}

type state struct {
	cfg    Config
	engine *simnet.Engine
	in     schedInstruments

	free    int
	running []runningJob
	queue   []queuedJob
	down    bool

	completed, killed int
	outstanding       int
	waitSum           time.Duration
	slowdownSum       float64
	waits             stats.Summary
	slowdowns         stats.Summary
	nodeSeconds       float64
	lastCompletion    time.Duration
}

func (s *state) submit(j trace.Job, resubmit bool) {
	s.in.submitted.Inc()
	wt := j.UserEstimate
	if !resubmit {
		// Walltime inference is a decision point worth a span of its own:
		// it is where the estimation framework (or the user estimate)
		// shapes everything the backfill planner does with this job.
		tr := s.engine.Tracer()
		sp := tr.Start("predict.walltime", 0, obs.Int("job", j.ID))
		p := s.cfg.Predictor.Walltime(&j)
		tr.SetAttrInt(sp, "walltime_ns", int(p))
		tr.End(sp)
		if p > 0 {
			wt = p
		}
	} else {
		// Resubmission after a kill: the user doubles the request.
		wt = j.UserEstimate * 2
	}
	// Kill policy: a job is never killed before its own requested
	// walltime — the model estimate steers scheduling, and only becomes
	// the enforced limit when the user supplied no request (where
	// underestimation costs a kill + resubmission, the failure-and-
	// reschedule penalty the slack variable α suppresses, §V-B).
	kill := wt
	if j.UserEstimate > kill {
		kill = j.UserEstimate
	}
	if resubmit {
		kill = j.UserEstimate * 2
	}
	s.queue = append(s.queue, queuedJob{
		job: j, walltime: wt, killLimit: kill,
		enqueued: s.engine.Now(), resubmit: resubmit,
	})
	s.schedule()
}

// start launches a queued job now.
func (s *state) start(q queuedJob) {
	now := s.engine.Now()
	load, term := s.cfg.Overhead(q.job.Nodes)
	runtime := q.job.Runtime
	killed := false
	if s.cfg.KillAtLimit && q.killLimit < runtime {
		runtime = q.killLimit
		killed = true
	}
	occupation := load + runtime + term

	s.in.started.Inc()
	tr := s.engine.Tracer()
	span := tr.Start("sched.job", 0,
		obs.Int("job", q.job.ID), obs.Int("nodes", q.job.Nodes),
		obs.Int64("wait_ns", int64(now-q.enqueued)))

	s.free -= q.job.Nodes
	rj := runningJob{nodes: q.job.Nodes, limitEnd: now + load + q.walltime + term}
	s.running = append(s.running, rj)

	wait := now - q.enqueued
	s.engine.After(occupation, func() {
		s.free += q.job.Nodes
		for i := range s.running {
			if s.running[i] == rj {
				s.running = append(s.running[:i], s.running[i+1:]...)
				break
			}
		}
		// Utilization counts node-hours spent *running* (the paper's
		// definition); RM load/termination overhead holds the nodes
		// without running the job, so it dilutes utilization. With a
		// UtilWindow, only the portion of the run inside the window
		// counts.
		runStart := now + load
		runEnd := runStart + runtime
		if s.cfg.UtilWindow > 0 {
			if runStart > s.cfg.UtilWindow {
				runEnd = runStart // fully outside
			} else if runEnd > s.cfg.UtilWindow {
				runEnd = s.cfg.UtilWindow
			}
		}
		if runEnd > runStart {
			s.nodeSeconds += float64(q.job.Nodes) * (runEnd - runStart).Seconds()
		}
		end := s.engine.Now()
		if end > s.lastCompletion {
			s.lastCompletion = end
		}
		if killed {
			tr.SetAttr(span, "outcome", "killed")
		} else {
			tr.SetAttr(span, "outcome", "completed")
		}
		tr.End(span)
		if killed {
			s.killed++
			s.in.killed.Inc()
			if !q.resubmit {
				// One retry with a doubled request.
				s.submit(q.job, true)
			} else {
				s.outstanding--
			}
		} else {
			s.outstanding--
			s.completed++
			s.in.completed.Inc()
			s.waitSum += wait
			tr := q.job.Runtime
			if tr < slowdownTau {
				tr = slowdownTau
			}
			sd := (wait + q.job.Runtime).Seconds() / tr.Seconds()
			if sd < 1 {
				sd = 1
			}
			s.slowdownSum += sd
			s.waits.Add(wait.Seconds())
			s.slowdowns.Add(sd)
			s.cfg.Predictor.JobDone(&q.job)
		}
		s.schedule()
	})
}

// schedule runs one scheduling pass (FCFS or EASY backfill).
func (s *state) schedule() {
	if s.down {
		return
	}
	// Start jobs in order while they fit.
	for len(s.queue) > 0 && s.queue[0].job.Nodes <= s.free {
		q := s.queue[0]
		s.queue = s.queue[1:]
		s.start(q)
	}
	if len(s.queue) == 0 || s.cfg.Policy == FCFS {
		return
	}

	// EASY backfill: reserve for the head, let later jobs slip in if they
	// cannot delay the reservation.
	head := s.queue[0]
	shadow, extra := s.reservation(head.job.Nodes)
	now := s.engine.Now()
	for i := 1; i < len(s.queue); {
		q := s.queue[i]
		if q.job.Nodes <= s.free {
			load, term := s.cfg.Overhead(q.job.Nodes)
			endsBy := now + load + q.walltime + term
			if endsBy <= shadow || q.job.Nodes <= extra {
				s.queue = append(s.queue[:i], s.queue[i+1:]...)
				s.start(q)
				if q.job.Nodes <= extra {
					extra -= q.job.Nodes
				}
				continue
			}
		}
		i++
	}
}

// reservation computes the EASY shadow time for a head job needing n nodes
// and the extra nodes that will remain free at that time.
func (s *state) reservation(n int) (shadow time.Duration, extra int) {
	if n <= s.free {
		return s.engine.Now(), s.free - n
	}
	// Sort running jobs by limit end (insertion into a copy; running lists
	// are short relative to trace sizes).
	ends := make([]runningJob, len(s.running))
	copy(ends, s.running)
	sortRunning(ends)
	avail := s.free
	for _, r := range ends {
		avail += r.nodes
		if avail >= n {
			return r.limitEnd, avail - n
		}
	}
	// Unreachable when job sizes are validated at submit; be safe.
	return s.engine.Now() + 365*24*time.Hour, 0
}

func sortRunning(rs []runningJob) {
	// Insertion sort: running sets are small and nearly sorted.
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && rs[j].limitEnd < rs[j-1].limitEnd; j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}

// FrameworkWalltimes plans with the ESlurm estimation framework: the
// model estimate when its cluster passes the AEA gate, the user estimate
// otherwise (Section V-B), feeding completions back to the record module.
type FrameworkWalltimes struct{ F *estimate.Framework }

// Walltime implements WalltimePredictor.
func (f FrameworkWalltimes) Walltime(j *trace.Job) time.Duration {
	return f.F.Predict(j).Used
}

// JobDone implements WalltimePredictor.
func (f FrameworkWalltimes) JobDone(j *trace.Job) { f.F.Complete(j) }
