// Scheduling-trace: replay a synthetic Tianhe-2A workload through the
// backfill scheduler under three configurations — FCFS, EASY backfill
// with user walltimes, and EASY backfill with the ESlurm runtime-
// estimation framework — and compare the Fig. 10 metrics.
package main

import (
	"fmt"
	"time"

	"eslurm/internal/estimate"
	"eslurm/internal/sched"
	"eslurm/internal/trace"
)

func main() {
	const nodes = 1024
	cfg := trace.Tianhe2AConfig(5000)
	cfg.MaxNodes = nodes
	tr := trace.Generate(cfg)
	fmt.Printf("workload: %d jobs over %v on a %d-node cluster\n",
		len(tr.Jobs), tr.Duration().Round(time.Hour), nodes)
	fmt.Printf("user overestimation: %.0f%% of jobs request more walltime than they use\n\n",
		100*tr.OverestimateFraction())

	type runCfg struct {
		name string
		cfg  sched.Config
	}
	runs := []runCfg{
		{"FCFS + user walltimes", sched.Config{
			Nodes: nodes, Policy: sched.FCFS, KillAtLimit: true}},
		{"EASY backfill + user walltimes", sched.Config{
			Nodes: nodes, Policy: sched.Backfill, KillAtLimit: true}},
		{"EASY backfill + ESlurm estimator", sched.Config{
			Nodes: nodes, Policy: sched.Backfill, KillAtLimit: true,
			Predictor: sched.FrameworkWalltimes{F: estimate.NewFramework(estimate.FrameworkConfig{})}}},
	}

	fmt.Printf("%-34s %-12s %-10s %-10s %-10s %s\n",
		"configuration", "utilization", "avg wait", "slowdown", "completed", "killed")
	for _, r := range runs {
		res := sched.Run(tr.Jobs, r.cfg)
		fmt.Printf("%-34s %-12s %-10v %-10.1f %-10d %d\n",
			r.name, fmt.Sprintf("%.1f%%", 100*res.Utilization),
			res.AvgWait.Round(time.Second), res.AvgBoundedSlowdown,
			res.Completed, res.Killed)
	}

	fmt.Println("\nThe estimator tightens the walltimes EASY plans with (lower waits)")
	fmt.Println("and rescues user-underestimated jobs whose model estimate is larger —")
	fmt.Println("far fewer walltime kills. The α=1.05 slack keeps the model itself")
	fmt.Println("from underestimating (Section V, Table VIII).")
}
