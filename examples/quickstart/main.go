// Quickstart: build a simulated 1,024-node cluster, boot the ESlurm
// master with two satellite nodes, broadcast a message to every compute
// node, and launch one job — the minimal tour of the core API.
package main

import (
	"fmt"
	"time"

	"eslurm/internal/cluster"
	"eslurm/internal/comm"
	"eslurm/internal/core"
	"eslurm/internal/simnet"
)

func main() {
	// Everything runs on a deterministic discrete-event engine: virtual
	// time, reproducible for a given seed.
	engine := simnet.NewEngine(42)
	c := cluster.New(engine, cluster.Config{Computes: 1024, Satellites: 2})

	// The ESlurm master: hierarchical RM with satellite relays (Eq. 1
	// decides how many satellites each broadcast uses).
	master := core.NewMaster(c, core.DefaultConfig(), nil)
	master.Start()
	engine.RunUntil(time.Second) // let the satellite probes complete

	fmt.Printf("cluster: %d computes, %d satellites, master node %d\n",
		len(c.Computes()), len(c.Satellites()), c.Master().ID)
	fmt.Printf("satellite fanout per Eq. 1: N(%d targets) = %d\n",
		len(c.Computes()), master.SatelliteFanout(len(c.Computes())))

	// Broadcast a 4 KB message to every compute node through the
	// satellite layer.
	var res comm.Result
	master.Broadcast(c.Computes(), 4096, func(r comm.Result) { res = r })
	engine.RunUntil(engine.Now() + time.Minute)
	fmt.Printf("broadcast: delivered %d/%d in %v using %d messages\n",
		res.Delivered, len(c.Computes()), res.DeliveredElapsed.Round(time.Microsecond), res.Messages)

	// Launch and terminate a 256-node job.
	jobNodes := c.Computes()[:256]
	var loaded comm.Result
	master.LoadJob(jobNodes, func(r comm.Result) { loaded = r })
	engine.RunUntil(engine.Now() + time.Minute)
	fmt.Printf("job spawned on %d nodes in %v (active jobs: %d)\n",
		loaded.Delivered, loaded.DeliveredElapsed.Round(time.Microsecond), master.ActiveJobs())

	master.TerminateJob(jobNodes, nil)
	engine.RunUntil(engine.Now() + time.Minute)
	fmt.Printf("job terminated (active jobs: %d)\n", master.ActiveJobs())

	// The headline scalability property: the master only ever talked to
	// its satellites.
	_, out := c.Master().Meter.Messages()
	fmt.Printf("master sent just %d messages for %d deliveries; peak sockets: %d\n",
		out, res.Delivered+loaded.Delivered+256, c.Master().Meter.PeakSockets())
}
