// Full-stack: the assembled ESlurm daemon from configuration file to
// completed jobs — config parsing (hostlists and the ESlurm additions),
// topology-aware node allocation, the multifactor-priority job table,
// EASY backfill, satellite-relayed launch broadcasts, and the runtime-
// estimation framework feeding walltimes back into the scheduler.
package main

import (
	"fmt"
	"strings"
	"time"

	"eslurm/internal/alloc"
	"eslurm/internal/cluster"
	"eslurm/internal/config"
	"eslurm/internal/controller"
	"eslurm/internal/core"
	"eslurm/internal/hostlist"
	"eslurm/internal/simnet"
	"eslurm/internal/topo"
	"eslurm/internal/trace"
)

const conf = `
ClusterName=demo
ControlMachine=mgmt01
SatelliteNodes=sat[01-02]
TreeWidth=32
ReallocLimit=2
HeartbeatInterval=150s
EstimatorWindow=400
EstimatorRefresh=6h
EstimatorK=20
EstimatorAlpha=1.05
NodeName=cn[0001-0512] CPUs=24 RealMemory=65536
PartitionName=batch Nodes=cn[0001-0512] MaxTime=7200 Default=YES
`

func main() {
	// 1. Configuration.
	cfg, err := config.Parse(strings.NewReader(conf))
	if err != nil {
		panic(err)
	}
	fmt.Printf("cluster %q: %d compute nodes (%s...), %d satellites\n",
		cfg.ClusterName, cfg.ComputeCount(),
		hostlist.Compress(cfg.Nodes[0].Names[:4]), len(cfg.SatelliteNodes))

	// 2. Assemble the daemon.
	e := simnet.NewEngine(2026)
	c := cluster.New(e, cluster.Config{
		Computes:   cfg.ComputeCount(),
		Satellites: len(cfg.SatelliteNodes),
	})
	master := core.NewMaster(c, cfg.CoreConfig(), nil)
	allocator := alloc.NewTopoAware(c.Computes(), topo.Default())
	parts, err := controller.PartitionsFromConfig(cfg, c)
	if err != nil {
		panic(err)
	}
	ctl, err := controller.New(c, master, allocator, controller.Config{
		UseEstimator: true,
		Estimator:    cfg.FrameworkConfig(),
		KillAtLimit:  true,
		Partitions:   parts,
	})
	if err != nil {
		panic(err)
	}
	ctl.Start()
	e.RunUntil(time.Second)

	// 3. Replay a synthetic workload through the controller.
	genCfg := trace.Tianhe2AConfig(1200)
	genCfg.MaxNodes = cfg.ComputeCount()
	tr := trace.Generate(genCfg)
	for i := range tr.Jobs {
		j := tr.Jobs[i]
		if j.Nodes > cfg.ComputeCount() {
			continue
		}
		e.Schedule(time.Second+j.Submit, func() {
			ctl.Submit(controller.JobSpec{
				Name: j.Name, User: j.User, Nodes: j.Nodes, Cores: j.Cores,
				UserEstimate: j.UserEstimate, Runtime: j.Runtime,
			})
		})
	}

	// Periodic status line, like watching squeue.
	e.Every(5*24*time.Hour, func() {
		m := ctl.Metrics()
		fmt.Printf("t=%5s  queued=%-3d running=%-3d completed=%-4d timeouts=%d\n",
			e.Now().Round(time.Hour), ctl.QueueDepth(), ctl.RunningCount(),
			m.Completed, m.TimedOut)
	})
	e.RunUntil(35 * 24 * time.Hour)
	ctl.Stop()
	e.RunUntil(e.Now() + time.Hour)

	// 4. The outcome.
	m := ctl.Metrics()
	fmt.Printf("\nworkload done: %d submitted, %d completed, %d killed at limit, %d rejected\n",
		m.Submitted, m.Completed, m.TimedOut, m.Rejected)
	fmt.Printf("avg queue wait %v; avg spawn broadcast %v across %d launches\n",
		m.AvgWait().Round(time.Second), m.AvgSpawn().Round(time.Microsecond), m.SpawnReps)
	fmt.Printf("estimator: %d model generations trained during the replay\n", ctl.Framework.Generations)
	st := master.Stats()
	fmt.Printf("master: %d broadcasts via %d satellite sub-tasks, %d reallocations, %d takeovers\n",
		st.Broadcasts, st.SubTasks, st.Reallocations, st.MasterTakeovers)
	mm := master.Meter()
	fmt.Printf("master footprint: cpu=%v rss=%.1fMB peak sockets=%d\n",
		mm.CPUTime().Round(time.Millisecond), float64(mm.RSS())/(1<<20), mm.PeakSockets())
}
