// Tracing: the simulated-time observability walkthrough. One full-stack
// broadcast runs end to end with tracing enabled, then the recording is
// shown three ways:
//
//  1. the span tree, in virtual time — master.broadcast at the root,
//     master.task per satellite dispatch, fptree.plan/build and the
//     comm.broadcast fan-out nested beneath, comm.send leaves;
//  2. the metrics registry — the always-on counters, gauges, and
//     histograms every layer records into;
//  3. a Chrome trace_event JSON written to trace.json — open it at
//     https://ui.perfetto.dev (or chrome://tracing) to scrub through the
//     broadcast visually.
//
// Everything is keyed to the engine's virtual clock: a span's timestamps
// are simulated nanoseconds, not host time, so the same seed produces a
// byte-identical trace on every machine. Tracing is opt-in
// (Engine.EnableTracing); a disabled engine pays one nil check.
package main

import (
	"fmt"
	"os"
	"time"

	"eslurm/internal/cluster"
	"eslurm/internal/comm"
	"eslurm/internal/core"
	"eslurm/internal/obs"
	"eslurm/internal/simnet"
)

// printTree renders the recorded spans as an indented tree in start order.
func printTree(tr *obs.Tracer) {
	spans := tr.Spans()
	children := make(map[obs.SpanID][]obs.SpanID)
	var roots []obs.SpanID
	for i := range spans {
		id := obs.SpanID(i + 1)
		if p := spans[i].Parent; p == 0 {
			roots = append(roots, id)
		} else {
			children[p] = append(children[p], id)
		}
	}
	shown := 0
	var walk func(id obs.SpanID, depth int)
	walk = func(id obs.SpanID, depth int) {
		if shown >= 40 {
			return
		}
		shown++
		sp := spans[id-1]
		dur := "open"
		if sp.Instant {
			dur = "instant"
		} else if sp.Ended {
			dur = (sp.End - sp.Start).Round(time.Microsecond).String()
		}
		fmt.Printf("%*s%-16s start=%-10v %-10s", depth*2, "", sp.Name, sp.Start.Round(time.Microsecond), dur)
		for _, a := range sp.Attrs {
			fmt.Printf(" %s=%s", a.Key, a.Value)
		}
		fmt.Println()
		for _, c := range children[id] {
			walk(c, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 1)
	}
	if rest := len(spans) - shown; rest > 0 {
		fmt.Printf("  ... %d more spans (see trace.json)\n", rest)
	}
}

func main() {
	e := simnet.NewEngine(42)
	tr := e.EnableTracing() // must precede the run; spans start at virtual zero

	c := cluster.New(e, cluster.Config{Computes: 64, Satellites: 2})
	m := core.NewMaster(c, core.DefaultConfig(), nil)
	m.Start()
	e.RunUntil(time.Second)

	// Fail a handful of computes so the trace shows retries and the
	// unreachable accounting, not just the happy path.
	for _, id := range c.Computes()[:4] {
		c.Fail(id)
	}

	var res comm.Result
	m.Broadcast(c.Computes(), 4096, func(r comm.Result) { res = r })
	e.RunUntil(e.Now() + 5*time.Minute)

	fmt.Printf("broadcast: delivered %d/%d, %d unreachable\n\n",
		res.Delivered, len(c.Computes()), len(res.Unreachable))

	fmt.Println("== span tree (virtual time) ==")
	printTree(tr)

	fmt.Println("\n== metrics registry ==")
	e.Metrics().WriteText(os.Stdout)

	if err := func() error {
		f, err := os.Create("trace.json")
		if err != nil {
			return err
		}
		if err := obs.WriteChrome(f, obs.Process{PID: 0, Name: "tracing example", T: tr}); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("\nwrote trace.json (%d spans) — load it at https://ui.perfetto.dev\n", tr.Len())
	fmt.Printf("trace digest: %016x (stable for seed 42 on any machine)\n", tr.Digest())
}
