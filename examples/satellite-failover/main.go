// Satellite-failover: the Section III-C fault-tolerance story. Watch the
// satellite state machine (Fig. 2) as satellites fail: broadcast tasks are
// reallocated round-robin, the master takes over when reallocation runs
// out, FAULTed satellites recover via heartbeats or are demoted to DOWN
// after the timeout.
package main

import (
	"fmt"
	"time"

	"eslurm/internal/cluster"
	"eslurm/internal/comm"
	"eslurm/internal/core"
	"eslurm/internal/simnet"
)

func states(m *core.Master, c *cluster.Cluster) string {
	out := ""
	for i, id := range c.Satellites() {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("sat%d=%v", i+1, m.Pool.Get(id).State())
	}
	return out
}

func broadcast(e *simnet.Engine, m *core.Master, c *cluster.Cluster, label string) {
	var res comm.Result
	got := false
	m.Broadcast(c.Computes(), 2048, func(r comm.Result) { res = r; got = true })
	e.RunUntil(e.Now() + 5*time.Minute)
	st := m.Stats()
	status := "never completed"
	if got {
		status = fmt.Sprintf("delivered %d/%d in %v", res.Delivered, len(c.Computes()),
			res.DeliveredElapsed.Round(time.Millisecond))
	}
	fmt.Printf("%-28s %s | realloc=%d takeover=%d | %s\n",
		label+":", status, st.Reallocations, st.MasterTakeovers, states(m, c))
}

func main() {
	e := simnet.NewEngine(11)
	c := cluster.New(e, cluster.Config{Computes: 1024, Satellites: 3})
	cfg := core.DefaultConfig()
	cfg.TaskTimeout = 30 * time.Second // snappy watchdog for the demo
	m := core.NewMaster(c, cfg, nil)
	m.Start()
	e.RunUntil(time.Second)
	fmt.Printf("boot: %s\n\n", states(m, c))

	broadcast(e, m, c, "all satellites healthy")

	// Kill one satellite: its tasks reallocate to the next in the
	// round-robin (Section III-C, at most ReallocLimit=2 trails).
	fmt.Println("\n-- killing satellite 1 --")
	c.Fail(c.Satellites()[0])
	broadcast(e, m, c, "one satellite down")

	// Kill the rest: the master takes the broadcast over itself,
	// "ensuring that the task is processed correctly and promptly".
	fmt.Println("\n-- killing satellites 2 and 3 --")
	c.Fail(c.Satellites()[1])
	c.Fail(c.Satellites()[2])
	broadcast(e, m, c, "all satellites down")

	// Recover two satellites: heartbeats promote FAULT -> RUNNING.
	fmt.Println("\n-- recovering satellites 1 and 2 --")
	c.Recover(c.Satellites()[0])
	c.Recover(c.Satellites()[1])
	e.RunUntil(e.Now() + 2*m.Config().HeartbeatInterval)
	fmt.Printf("after heartbeats: %s\n", states(m, c))
	broadcast(e, m, c, "two satellites back")

	// Leave satellite 3 dead past the FAULT timeout: TIMEOUT demotes it
	// to DOWN, requiring administrator intervention (Reinstate).
	fmt.Println("\n-- waiting out the 20-minute FAULT timeout for satellite 3 --")
	e.RunUntil(e.Now() + 25*time.Minute)
	fmt.Printf("after timeout: %s\n", states(m, c))
	sat3 := m.Pool.Get(c.Satellites()[2])
	c.Recover(c.Satellites()[2])
	e.RunUntil(e.Now() + 2*m.Config().HeartbeatInterval)
	fmt.Printf("recovered but still DOWN (admin needed): sat3=%v\n", sat3.State())
	sat3.Reinstate()
	e.RunUntil(e.Now() + 2*m.Config().HeartbeatInterval)
	fmt.Printf("after Reinstate + heartbeat: sat3=%v\n", sat3.State())

	broadcast(e, m, c, "\nfull pool restored")
}
