// Runtime-estimation: a guided tour of the Section V framework — model
// generations, clustering, the AEA gate, the slack variable — plus a
// live comparison against the published baselines on an NG-Tianhe-like
// trace (Fig. 11b in miniature).
package main

import (
	"fmt"
	"time"

	"eslurm/internal/estimate"
	"eslurm/internal/trace"
)

func main() {
	tr := trace.Generate(trace.NGTianheConfig(6000))
	fmt.Printf("trace: %d jobs from %s over %v\n\n",
		len(tr.Jobs), tr.System, tr.Duration().Round(time.Hour))

	// 1. Watch the framework's lifecycle on a prefix of the trace.
	f := estimate.NewFramework(estimate.FrameworkConfig{}) // paper defaults:
	// interest window 700 jobs, refresh 15h, K=15, alpha=1.05, AEA gate 90%
	cfg := f.Config()
	fmt.Printf("framework config: window=%d refresh=%v K=%d alpha=%.2f gate=%.0f%%\n",
		cfg.InterestWindow, cfg.RefreshEvery, cfg.K, cfg.Alpha, 100*cfg.AEAGate)

	warm := tr.Jobs[:2000]
	for i := range warm {
		f.Predict(&warm[i])  // real-time estimation module (may refresh the model)
		f.Complete(&warm[i]) // record module: EA per Eq. 4, AEA per Eq. 5
	}
	fmt.Printf("after 2,000 jobs: %d model generations built\n\n", f.Generations)

	// 2. A single prediction, dissected.
	j := tr.Jobs[2100]
	p := f.Predict(&j)
	fmt.Printf("job %q by %s (%d nodes), user asked %v, actually runs %v\n",
		j.Name, j.User, j.Nodes, j.UserEstimate, j.Runtime.Round(time.Second))
	fmt.Printf("  matched cluster %d; model estimate (x%.2f slack) = %v\n",
		p.Cluster, cfg.Alpha, p.Model.Round(time.Second))
	if p.UsedModel {
		fmt.Printf("  cluster AEA passed the %.0f%% gate: scheduler plans with the model\n", 100*cfg.AEAGate)
	} else {
		fmt.Printf("  cluster AEA below the gate: scheduler keeps the user estimate\n")
	}
	fmt.Printf("  estimation accuracy EA (Eq. 4) vs truth: %.3f\n\n", estimate.EA(p.Model, j.Runtime))

	// 3. Fig. 11b in miniature: replay the full trace through every
	// estimator.
	fmt.Printf("%-14s %-8s %-8s %s\n", "estimator", "AEA", "UR", "coverage")
	for _, e := range []estimate.Estimator{
		estimate.User{},
		estimate.NewLast2(),
		estimate.NewSVM(),
		estimate.NewRandomForest(1),
		estimate.NewIRPA(2),
		estimate.NewTRIP(),
		estimate.NewPREP(),
		// K follows the paper's elbow methodology per workload: their
		// trace gave 15, this synthetic one ~40 (see EXPERIMENTS.md).
		estimate.NewFramework(estimate.FrameworkConfig{K: 40}),
	} {
		res := estimate.Evaluate(e, tr.Jobs)
		fmt.Printf("%-14s %-8.3f %-8.3f %.3f\n",
			e.Name(), res.AEA, res.UnderestimateRate, res.Coverage)
	}
	fmt.Println("\n(AEA: average estimation accuracy, Eq. 5 — higher is better;")
	fmt.Println(" UR: underestimation rate — lower avoids walltime kills;")
	fmt.Println(" coverage: fraction of jobs the estimator would act on.)")
}
