// Broadcast-failures: the Section IV story in one run. Fail 10% of a 4K
// cluster, then compare all five communication structures — and show how
// the FP-Tree's failure prediction keeps delivery time flat by placing
// likely-failed nodes at the tree's leaves.
package main

import (
	"fmt"
	"time"

	"eslurm/internal/cluster"
	"eslurm/internal/comm"
	"eslurm/internal/fptree"
	"eslurm/internal/monitor"
	"eslurm/internal/predict"
	"eslurm/internal/simnet"
)

func run(structure comm.Structure, failRatio float64) comm.Result {
	engine := simnet.NewEngine(7)
	c := cluster.New(engine, cluster.Config{Computes: 4096, Satellites: 1})

	// Scatter failures across the cluster.
	count := int(4096 * failRatio)
	if count > 0 {
		stride := 4096 / count
		for i := 0; i < count; i++ {
			c.Fail(c.Computes()[i*stride])
		}
	}
	if fp, ok := structure.(comm.FPTree); ok {
		// The FP-Tree consults the failure predictor; use the oracle here
		// (production runs the alert-driven plugin, see below).
		fp.Predictor = predict.Oracle{Cluster: c}
		structure = fp
	}
	b := comm.NewBroadcaster(c)
	var res comm.Result
	structure.Broadcast(b, c.Satellites()[0], c.Computes(), 4096, func(r comm.Result) { res = r })
	engine.Run()
	return res
}

func main() {
	fmt.Println("== Fig. 8b in miniature (+ binomial baseline): 4KB to 4,096 nodes, 10% failed ==")
	fmt.Printf("%-12s %-14s %-10s %s\n", "structure", "delivery time", "messages", "retries")
	for _, s := range []comm.Structure{
		comm.Ring{}, comm.Star{}, comm.SharedMem{}, comm.Binomial{}, comm.KTree{}, comm.FPTree{},
	} {
		res := run(s, 0.10)
		fmt.Printf("%-12s %-14v %-10d %d\n",
			s.Name(), res.DeliveredElapsed.Round(time.Millisecond), res.Messages, res.Retries)
	}

	fmt.Println("\n== How the FP-Tree constructor works (Fig. 4) ==")
	// A 20-node list where nodes 2 and 7 are predicted to fail.
	list := make([]int, 20)
	for i := range list {
		list[i] = i
	}
	predicted := map[int]bool{2: true, 7: true}
	slots := fptree.LeafSlots(len(list), 4)
	fmt.Printf("leaf slots (width 4): %v\n", slots)
	rearranged := fptree.Rearrange(list, func(v int) bool { return predicted[v] }, 4)
	fmt.Printf("rearranged nodelist:  %v\n", rearranged)
	tree := fptree.Build(rearranged, 4)
	fmt.Printf("tree depth: %d, leaves: %v\n", tree.Depth(), tree.Leaves())
	for i, v := range rearranged {
		if predicted[v] && !slots[i] {
			fmt.Println("BUG: predicted node at interior position!")
		}
	}
	fmt.Println("predicted-failed nodes 2 and 7 now sit at leaf positions: no descendants wait on their timeouts")

	fmt.Println("\n== Prediction driven by the monitoring subsystem (BMU/CMU/SMU) ==")
	engine := simnet.NewEngine(99)
	c := cluster.New(engine, cluster.Config{Computes: 256, Satellites: 1})
	sub := monitor.New(c, monitor.Config{DetectionProb: 1.0, LeadTime: 10 * time.Minute})
	alertPred := predict.NewAlertDriven(engine, sub, time.Hour)
	victim := c.Computes()[100]
	sub.NoticeImpendingFailure(victim, 30*time.Minute)
	c.ScheduleFailure(victim, 30*time.Minute, 0)
	engine.RunUntil(25 * time.Minute)
	fmt.Printf("t=25m: node %d failed=%v, predicted=%v (alert arrived with ~10m lead)\n",
		victim, c.Node(victim).Failed(), alertPred.Predicted(victim))
}
