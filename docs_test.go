// Doc-drift gates: the documentation makes checkable claims about the
// code (the README's analyzer table mirrors the linter registry; relative
// markdown links point at files that exist), and these tests fail when
// either drifts. They are the dynamic half of the documentation contract
// whose static half is the lint pkgdoc analyzer.
package eslurm_test

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"eslurm/internal/lint"
	"eslurm/internal/obs"
)

// TestREADMEAnalyzerTable pins the README's analyzer table to the linter
// registry, byte for byte, in the exact format `eslurmlint -list` prints.
// Adding, renaming or re-documenting an analyzer without updating the
// README fails here with the block to paste.
func TestREADMEAnalyzerTable(t *testing.T) {
	var b strings.Builder
	b.WriteString("| analyzer | rule |\n")
	b.WriteString("|----------|------|\n")
	for _, a := range lint.Analyzers() {
		fmt.Fprintf(&b, "| `%s` | %s |\n", a.Name, a.Doc)
	}
	want := b.String()

	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(readme), want) {
		t.Errorf("README.md analyzer table drifted from the lint registry.\n"+
			"Replace the table with the output of `eslurmlint -list`:\n\n%s", want)
	}
}

// TestObservabilityTaxonomyTables pins OBSERVABILITY.md's span and
// metric tables to the registries in internal/obs/taxonomy.go, byte for
// byte, in the exact format `benchrunner -spans` prints. A taxonomy
// change without a handbook update fails here with the block to paste
// (and the taxonomy itself is pinned to the emit sites by the
// completeness tests in internal/obs).
func TestObservabilityTaxonomyTables(t *testing.T) {
	doc, err := os.ReadFile("OBSERVABILITY.md")
	if err != nil {
		t.Fatal(err)
	}
	for name, want := range map[string]string{
		"span":   obs.SpanTaxonomyMarkdown(),
		"metric": obs.MetricTaxonomyMarkdown(),
	} {
		if !strings.Contains(string(doc), want) {
			t.Errorf("OBSERVABILITY.md %s table drifted from the obs taxonomy.\n"+
				"Replace it with the matching block from `go run ./cmd/benchrunner -spans`:\n\n%s", name, want)
		}
	}
}

// mdLink matches inline markdown links/images; the destination is group 1.
var mdLink = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

// TestMarkdownLinksResolve walks the top-level docs and checks that every
// relative link destination exists on disk. External URLs and pure
// in-page anchors are out of scope — only file references can rot here.
func TestMarkdownLinksResolve(t *testing.T) {
	for _, doc := range []string{"README.md", "DESIGN.md", "EXPERIMENTS.md", "OBSERVABILITY.md"} {
		data, err := os.ReadFile(doc)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			dest := m[1]
			if strings.Contains(dest, "://") || strings.HasPrefix(dest, "#") ||
				strings.HasPrefix(dest, "mailto:") {
				continue
			}
			// A link may carry an in-page anchor: DESIGN.md#observability.
			if i := strings.IndexByte(dest, '#'); i >= 0 {
				dest = dest[:i]
			}
			if dest == "" {
				continue
			}
			if _, err := os.Stat(filepath.FromSlash(dest)); err != nil {
				t.Errorf("%s links to %q, which does not resolve: %v", doc, m[1], err)
			}
		}
	}
}
