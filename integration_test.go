// Integration tests: run miniature versions of every registered experiment
// end-to-end, guarding the whole pipeline (trace generation → simulation →
// drivers → table rendering) rather than any single package.
package eslurm_test

import (
	"strings"
	"testing"
	"time"

	"eslurm/internal/experiment"
)

// tinyParams shrinks every experiment far below the quick preset so the
// whole registry runs in seconds under `go test`.
func tinyParams() experiment.Params {
	return experiment.Params{
		Fig5Jobs: 3000, Fig11bJobs: 1200, Table8Jobs: 0, // Table8 handled separately
		Fig7Nodes: 256, Fig7Span: 5 * time.Minute,
		Fig9Nodes: 512, Fig9Span: 5 * time.Minute,
		T56Nodes: 512, T56Span: 10 * time.Minute, T56Sats: []int{2, 4},
		Fig7fNodes: 256, Fig8Nodes: 256, Fig11aNodes: 512,
		PlaceNodes: 256, PlaceDays: 1,
		Fig10Scales: []int{128}, Fig10Jobs: 400,
		AblationScale: 128, AblationJobs: 400,
	}
}

func TestEveryExperimentRunsAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the whole registry")
	}
	p := tinyParams()
	for _, spec := range experiment.Registry() {
		spec := spec
		if spec.ID == "table8" || spec.ID == "fig11b" {
			// The estimator replays are the slow ones; they get their own
			// richer tests in internal/estimate and internal/experiment.
			continue
		}
		t.Run(spec.ID, func(t *testing.T) {
			tables := spec.Run(p)
			if len(tables) == 0 {
				t.Fatal("no tables produced")
			}
			for _, tb := range tables {
				if tb.ID == "" || tb.Title == "" {
					t.Errorf("table missing identity: %+v", tb)
				}
				if len(tb.Columns) == 0 || len(tb.Rows) == 0 {
					t.Errorf("table %s has no data", tb.ID)
				}
				for _, row := range tb.Rows {
					if len(row) > len(tb.Columns) {
						t.Errorf("table %s row wider than header: %v", tb.ID, row)
					}
					for _, cell := range row {
						if strings.TrimSpace(cell) == "" {
							t.Errorf("table %s has an empty cell in %v", tb.ID, row)
						}
					}
				}
				var sb strings.Builder
				tb.Fprint(&sb)
				if !strings.Contains(sb.String(), tb.ID) {
					t.Errorf("rendered table missing its ID")
				}
			}
		})
	}
}

func TestExperimentDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs drivers twice")
	}
	// The same driver at the same params yields byte-identical tables.
	p := tinyParams()
	for _, id := range []string{"fig8b", "fig7f", "placement"} {
		spec, ok := experiment.Lookup(id)
		if !ok {
			t.Fatalf("missing %s", id)
		}
		render := func() string {
			var sb strings.Builder
			for _, tb := range spec.Run(p) {
				tb.Fprint(&sb)
			}
			return sb.String()
		}
		a, b := render(), render()
		if a != b {
			t.Errorf("%s is nondeterministic:\n%s\n---\n%s", id, a, b)
		}
	}
}
