// Integration tests: run miniature versions of every registered experiment
// end-to-end, guarding the whole pipeline (trace generation → simulation →
// drivers → table rendering) rather than any single package.
package eslurm_test

import (
	"fmt"
	"hash/fnv"
	"math"
	"strings"
	"testing"
	"time"

	"eslurm/internal/cluster"
	"eslurm/internal/experiment"
	"eslurm/internal/rm"
	"eslurm/internal/simnet"
)

// tinyParams shrinks every experiment far below the quick preset so the
// whole registry runs in seconds under `go test`.
func tinyParams() experiment.Params {
	return experiment.Params{
		Fig5Jobs: 3000, Fig11bJobs: 1200, Table8Jobs: 0, // Table8 handled separately
		Fig7Nodes: 256, Fig7Span: 5 * time.Minute,
		Fig9Nodes: 512, Fig9Span: 5 * time.Minute,
		T56Nodes: 512, T56Span: 10 * time.Minute, T56Sats: []int{2, 4},
		Fig7fNodes: 256, Fig8Nodes: 256, Fig11aNodes: 512,
		PlaceNodes: 256, PlaceDays: 1,
		Fig10Scales: []int{128}, Fig10Jobs: 400,
		AblationScale: 128, AblationJobs: 400,
	}
}

func TestEveryExperimentRunsAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the whole registry")
	}
	p := tinyParams()
	for _, spec := range experiment.Registry() {
		spec := spec
		if spec.ID == "table8" || spec.ID == "fig11b" {
			// The estimator replays are the slow ones; they get their own
			// richer tests in internal/estimate and internal/experiment.
			continue
		}
		t.Run(spec.ID, func(t *testing.T) {
			tables := spec.Run(p)
			if len(tables) == 0 {
				t.Fatal("no tables produced")
			}
			for _, tb := range tables {
				if tb.ID == "" || tb.Title == "" {
					t.Errorf("table missing identity: %+v", tb)
				}
				if len(tb.Columns) == 0 || len(tb.Rows) == 0 {
					t.Errorf("table %s has no data", tb.ID)
				}
				for _, row := range tb.Rows {
					if len(row) > len(tb.Columns) {
						t.Errorf("table %s row wider than header: %v", tb.ID, row)
					}
					for _, cell := range row {
						if strings.TrimSpace(cell) == "" {
							t.Errorf("table %s has an empty cell in %v", tb.ID, row)
						}
					}
				}
				var sb strings.Builder
				tb.Fprint(&sb)
				if !strings.Contains(sb.String(), tb.ID) {
					t.Errorf("rendered table missing its ID")
				}
			}
		})
	}
}

// fullStackDigest runs a complete ESlurm stack (cluster + satellites +
// RM + job flow) for a stretch of virtual time and returns (a) an FNV
// digest of the engine's full event trace — every executed event's
// (time, seq) pair in execution order — and (b) a rendering of the final
// metrics. Identical seeds must yield identical digests bit for bit;
// this is the determinism contract eslurmlint statically enforces.
func fullStackDigest(seed int64) (trace string, metrics string) {
	const nodes = 128
	span := 20 * time.Minute

	e := simnet.NewEngine(seed)
	h := fnv.New64a()
	e.Observe(func(at time.Duration, seq uint64) {
		fmt.Fprintf(h, "%d:%d;", int64(at), seq)
	})
	c := cluster.New(e, cluster.Config{Computes: nodes, Satellites: 2})
	r := rm.NewESlurm(c)
	r.Start()

	rng := e.Rand("integration/determinism")
	var submit func()
	submit = func() {
		gap := time.Duration(30+rng.ExpFloat64()*70) * time.Second
		e.After(gap, func() {
			if e.Now() > span {
				return
			}
			size := int(math.Exp(rng.NormFloat64()*1.2+3.0)) + 1
			if size > nodes/2 {
				size = nodes / 2
			}
			jobNodes := c.Computes()[:size]
			r.LoadJob(jobNodes, func(time.Duration) {
				runFor := time.Duration(10+rng.ExpFloat64()*110) * time.Second
				e.After(runFor, func() {
					r.TerminateJob(jobNodes, func(time.Duration) {})
				})
			})
			submit()
		})
	}
	submit()

	e.RunUntil(span)
	r.Stop()
	e.RunUntil(span + 10*time.Minute)

	m := r.Meter()
	metrics = fmt.Sprintf("events=%d cpu=%v vmem=%d rss=%d sockets=%.6f peak=%d",
		e.Processed(), m.CPUTime(), m.VMem(), m.RSS(), m.AvgSockets(), m.PeakSockets())
	return fmt.Sprintf("%016x", h.Sum64()), metrics
}

// TestFullStackDeterminism is the regression test behind the eslurmlint
// gate: the same seed twice must reproduce the exact event trace and
// final metrics, and a different seed must actually change the run.
func TestFullStackDeterminism(t *testing.T) {
	trace1, metrics1 := fullStackDigest(42)
	trace2, metrics2 := fullStackDigest(42)
	if trace1 != trace2 {
		t.Errorf("event-trace digests differ for the same seed: %s vs %s", trace1, trace2)
	}
	if metrics1 != metrics2 {
		t.Errorf("final metrics differ for the same seed:\n%s\n%s", metrics1, metrics2)
	}
	trace3, _ := fullStackDigest(43)
	if trace3 == trace1 {
		t.Errorf("different seeds produced the same event-trace digest %s; the seed is not wired through", trace1)
	}
}

func TestExperimentDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs drivers twice")
	}
	// The same driver at the same params yields byte-identical tables.
	p := tinyParams()
	for _, id := range []string{"fig8b", "fig7f", "placement"} {
		spec, ok := experiment.Lookup(id)
		if !ok {
			t.Fatalf("missing %s", id)
		}
		render := func() string {
			var sb strings.Builder
			for _, tb := range spec.Run(p) {
				tb.Fprint(&sb)
			}
			return sb.String()
		}
		a, b := render(), render()
		if a != b {
			t.Errorf("%s is nondeterministic:\n%s\n---\n%s", id, a, b)
		}
	}
}
